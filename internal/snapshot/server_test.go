package snapshot

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"countryrank/internal/obs"
)

func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	return Assemble(testData(1), Config{})
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHandlerCountry(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))

	for _, path := range []string{"/v1/countries/AU", "/v1/countries/au", "/v1/countries/aU"} {
		w := get(t, h, path, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, w.Code)
		}
		if got := w.Body.String(); got != string(s.CountryBody("AU")) {
			t.Errorf("GET %s body mismatch:\n%s", path, got)
		}
		if et := w.Header().Get("ETag"); et != s.CountryETag("AU") {
			t.Errorf("GET %s ETag = %q, want %q", path, et, s.CountryETag("AU"))
		}
		if cl := w.Header().Get("Content-Length"); cl != strconv.Itoa(w.Body.Len()) {
			t.Errorf("GET %s Content-Length = %q, body %d bytes", path, cl, w.Body.Len())
		}
		if cc := w.Header().Get("Cache-Control"); !strings.Contains(cc, "max-age") {
			t.Errorf("GET %s Cache-Control = %q", path, cc)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("GET %s Content-Type = %q", path, ct)
		}
	}
}

func TestHandlerConditional(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	etag := s.CountryETag("AU")

	cases := []struct {
		inm  string
		want int
	}{
		{etag, http.StatusNotModified},
		{`"stale", ` + etag, http.StatusNotModified}, // listed among others
		{"W/" + etag, http.StatusNotModified},        // weak comparison
		{"*", http.StatusNotModified},
		{`"something-else"`, http.StatusOK},
		{"", http.StatusOK},
	}
	for _, c := range cases {
		hdr := map[string]string{}
		if c.inm != "" {
			hdr["If-None-Match"] = c.inm
		}
		w := get(t, h, "/v1/countries/AU", hdr)
		if w.Code != c.want {
			t.Errorf("If-None-Match %q: status %d, want %d", c.inm, w.Code, c.want)
		}
		if et := w.Header().Get("ETag"); et != etag {
			t.Errorf("If-None-Match %q: ETag %q, want %q", c.inm, et, etag)
		}
		if c.want == http.StatusNotModified && w.Body.Len() != 0 {
			t.Errorf("If-None-Match %q: 304 carried %d body bytes", c.inm, w.Body.Len())
		}
	}
}

func TestHandlerTop(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))

	// Explicit n, case-insensitive metric.
	for _, path := range []string{"/v1/top/ccg?n=2", "/v1/top/CCG?n=2"} {
		w := get(t, h, path, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body.String())
		}
		if got, want := w.Body.String(), string(s.tops["ccg"][1].body); got != want {
			t.Errorf("GET %s body = %s, want %s", path, got, want)
		}
	}

	// Default n=10 clamps to the 3 available entries → largest variant.
	w := get(t, h, "/v1/top/ccg", nil)
	if w.Code != http.StatusOK || w.Body.String() != string(s.tops["ccg"][2].body) {
		t.Errorf("GET /v1/top/ccg (default n) = %d %s", w.Code, w.Body.String())
	}
	// Oversized n clamps the same way rather than 400/404ing.
	w = get(t, h, "/v1/top/ccg?n=999", nil)
	if w.Code != http.StatusOK || w.Body.String() != string(s.tops["ccg"][2].body) {
		t.Errorf("GET /v1/top/ccg?n=999 = %d", w.Code)
	}
	// Extra params around n are ignored.
	w = get(t, h, "/v1/top/ccg?foo=bar&n=1&x=2", nil)
	if w.Code != http.StatusOK || w.Body.String() != string(s.tops["ccg"][0].body) {
		t.Errorf("GET with surrounding params = %d", w.Code)
	}
}

func TestHandlerErrors(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))

	for path, want := range map[string]int{
		"/v1/countries/ZZ":          http.StatusNotFound, // unknown country
		"/v1/countries/AU/x":        http.StatusNotFound, // no sub-paths
		"/v1/countries/ZZ/history":  http.StatusNotFound, // unknown country history
		"/v1/countries/AU/history/": http.StatusNotFound, // no deeper sub-paths
		"/v1/countries//history":    http.StatusNotFound, // empty country code
		"/v1/countries/":            http.StatusNotFound,
		"/v1/countries/TOOLONGCODE": http.StatusNotFound,
		"/v1/top/bogus":             http.StatusNotFound, // unknown metric
		"/v1/top/ccg/extra":         http.StatusNotFound,
		"/v1/other":                 http.StatusNotFound,
		"/v1/":                      http.StatusNotFound,
		"/v1/top/ccg?n=abc":         http.StatusBadRequest,
		"/v1/top/ccg?n=":            http.StatusBadRequest,
		"/v1/top/ccg?n=0":           http.StatusBadRequest,
		"/v1/top/ccg?n=-1":          http.StatusBadRequest,
		"/v1/top/ccg?n=1234567890":  http.StatusBadRequest, // > 9 digits
	} {
		if w := get(t, h, path, nil); w.Code != want {
			t.Errorf("GET %s = %d, want %d", path, w.Code, want)
		}
	}

	// Non-GET/HEAD methods are rejected with Allow.
	req := httptest.NewRequest(http.MethodPost, "/v1/snapshot", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed || w.Header().Get("Allow") == "" {
		t.Errorf("POST = %d, Allow = %q", w.Code, w.Header().Get("Allow"))
	}

	// A store with no published snapshot answers 503.
	empty := NewHandler(NewStore(nil))
	if w := get(t, empty, "/v1/snapshot", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("empty store GET = %d, want 503", w.Code)
	}
}

func TestHandlerHead(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	req := httptest.NewRequest(http.MethodHead, "/v1/countries/AU", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("HEAD = %d", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Errorf("HEAD carried %d body bytes", w.Body.Len())
	}
	if cl := w.Header().Get("Content-Length"); cl != strconv.Itoa(len(s.CountryBody("AU"))) {
		t.Errorf("HEAD Content-Length = %q", cl)
	}
}

// collectHandler is a slog.Handler that retains records for assertions.
type collectHandler struct {
	mu      sync.Mutex
	records []map[string]any
}

func (c *collectHandler) Enabled(context.Context, slog.Level) bool { return true }
func (c *collectHandler) WithAttrs([]slog.Attr) slog.Handler       { return c }
func (c *collectHandler) WithGroup(string) slog.Handler            { return c }
func (c *collectHandler) Handle(_ context.Context, r slog.Record) error {
	m := map[string]any{}
	r.Attrs(func(a slog.Attr) bool { m[a.Key] = a.Value.Any(); return true })
	c.mu.Lock()
	c.records = append(c.records, m)
	c.mu.Unlock()
	return nil
}

// TestInstrumentedWideEvents drives the handler with every hook installed
// and checks the wide events carry the request facts an operator needs:
// route class, target, status, ETag hit/miss, snapshot epoch+digest, and
// bytes.
func TestInstrumentedWideEvents(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	col := &collectHandler{}
	log := obs.NewAccessLog(slog.New(col), obs.AccessLogConfig{SampleOK: 1}).Start()
	h.Instrument(Instrumentation{
		Log:      log,
		Requests: obs.NewReqTracker(7, 1, 0, 0), // sample everything
		SLO:      obs.NewSLO(obs.SLOConfig{Availability: 0.99, LatencyTarget: 0.99, LatencyThreshold: time.Hour}),
	})

	get(t, h, "/v1/countries/AU", nil)
	get(t, h, "/v1/countries/AU", map[string]string{"If-None-Match": s.CountryETag("AU")})
	get(t, h, "/v1/top/ccg?n=2", nil)
	get(t, h, "/v1/countries/ZZ", nil) // 404: must be logged even unsampled
	log.Close()

	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.records) != 4 {
		t.Fatalf("access log emitted %d records, want 4", len(col.records))
	}
	want := []struct {
		route, target, etag string
		status, bytes       int64
	}{
		{"country", "AU", "miss", 200, int64(len(s.CountryBody("AU")))},
		{"country", "AU", "hit", 304, 0},
		{"top", "ccg", "miss", 200, int64(len(s.tops["ccg"][1].body))},
		{"country", "ZZ", "miss", 404, 0},
	}
	for i, w := range want {
		rec := col.records[i]
		if rec["route"] != w.route || rec["target"] != w.target || rec["etag"] != w.etag {
			t.Errorf("event %d: route/target/etag = %v/%v/%v, want %v/%v/%v",
				i, rec["route"], rec["target"], rec["etag"], w.route, w.target, w.etag)
		}
		if rec["status"] != w.status || rec["bytes"] != w.bytes {
			t.Errorf("event %d: status/bytes = %v/%v, want %d/%d", i, rec["status"], rec["bytes"], w.status, w.bytes)
		}
		if rec["epoch"] != int64(1) || rec["digest"] != s.Digest {
			t.Errorf("event %d: epoch/digest = %v/%v", i, rec["epoch"], rec["digest"])
		}
		if rec["sampled"] != true {
			t.Errorf("event %d: sampled = %v, want true (rate-1 tracker)", i, rec["sampled"])
		}
	}
}

// TestInstrumentedRequestTraces checks sampled requests land in the
// tracker with route, status, and the parse/lookup/write event sequence.
func TestInstrumentedRequestTraces(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	tracker := obs.NewReqTracker(7, 1, 8, 4)
	h.Instrument(Instrumentation{Requests: tracker})

	get(t, h, "/v1/countries/AU", nil)
	get(t, h, "/v1/top/ccg?n=2", nil)

	snap := tracker.Snapshot()
	if snap.Seen != 2 || snap.Sampled != 2 {
		t.Fatalf("tracker saw %d sampled %d, want 2/2", snap.Seen, snap.Sampled)
	}
	if len(snap.Active) != 0 {
		t.Errorf("%d traces still active after completion", len(snap.Active))
	}
	country := snap.Routes["country"]
	if len(country.Recent) != 1 || country.Recent[0].Status != 200 || country.Recent[0].Path != "/v1/countries/AU" {
		t.Fatalf("country recent = %+v", country.Recent)
	}
	var names []string
	for _, ev := range country.Recent[0].Events {
		names = append(names, ev.Name)
	}
	if strings.Join(names, ",") != "parse,lookup,write" {
		t.Errorf("trace events = %v, want parse,lookup,write", names)
	}
	if len(country.Slowest) != 1 {
		t.Errorf("slowest shelf holds %d, want 1", len(country.Slowest))
	}
}

// TestInstrumentedSLOAccounting checks the handler feeds the SLO engine:
// 304s excluded from the latency population, 404s not counted as errors,
// and the request totals matching traffic.
func TestInstrumentedSLOAccounting(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	now := time.Unix(1000, 0)
	slo := obs.NewSLO(obs.SLOConfig{
		Availability: 0.99, LatencyTarget: 0.99, LatencyThreshold: time.Hour,
		Bucket: time.Second, FastWindow: 10 * time.Second, SlowWindow: 20 * time.Second,
		Clock: func() time.Time { return now },
	})
	h.Instrument(Instrumentation{SLO: slo})

	get(t, h, "/v1/countries/AU", nil)
	get(t, h, "/v1/countries/AU", map[string]string{"If-None-Match": s.CountryETag("AU")})
	get(t, h, "/v1/countries/ZZ", nil)

	st := slo.Status()
	if len(st.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(st.Objectives))
	}
	avail, lat := st.Objectives[0], st.Objectives[1]
	if avail.Fast.Total != 3 || avail.Fast.Bad != 0 {
		t.Errorf("availability fast = %+v, want 3 total 0 bad (404 is not a 5xx)", avail.Fast)
	}
	if lat.Fast.Total != 2 || lat.Fast.Bad != 0 {
		t.Errorf("latency fast = %+v, want 2 total (304 excluded) 0 bad", lat.Fast)
	}
}

// TestSlowProbe checks the CI latency-injection hook only fires on tagged
// requests.
func TestSlowProbe(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	h.Instrument(Instrumentation{SlowProbe: 30 * time.Millisecond})

	start := time.Now()
	w := get(t, h, "/v1/countries/AU", nil)
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("untagged request took %v with slow probe armed", d)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("untagged = %d", w.Code)
	}
	start = time.Now()
	w = get(t, h, "/v1/snapshot?probe=slow", nil)
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("tagged request took only %v, want >= 30ms", d)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("tagged = %d", w.Code)
	}
}

// TestShedOverLimit pins the admission gate: requests beyond MaxInFlight
// are refused with 503 + Retry-After and counted, while admitted requests
// are untouched — and the gate releases, so capacity returns when load
// drops.
func TestShedOverLimit(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	h.Instrument(Instrumentation{MaxInFlight: 2})
	shed0 := mShed.Value()

	// Saturate the gate: two requests parked inside the handler.
	inside := make(chan struct{}, 2)
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			req := httptest.NewRequest(http.MethodGet, "/v1/countries/AU", nil)
			h.ServeHTTP(&blockingWriter{inside: inside, release: release}, req)
		}()
	}
	<-inside
	<-inside

	// The third concurrent request must shed.
	w := get(t, h, "/v1/countries/AU", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit request = %d, want 503", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	if cl := w.Header().Get("Content-Length"); cl != strconv.Itoa(w.Body.Len()) {
		t.Errorf("shed Content-Length %q, body %d bytes", cl, w.Body.Len())
	}
	if d := mShed.Value() - shed0; d != 1 {
		t.Errorf("shed counter moved by %d, want 1", d)
	}

	// Draining the parked requests frees the gate.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if w := get(t, h, "/v1/countries/AU", nil); w.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate did not release after parked requests drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// blockingWriter parks the handler inside Write until released, holding an
// admission slot occupied. Each instance serves exactly one request; only
// the channels are shared.
type blockingWriter struct {
	hdr     http.Header
	inside  chan struct{}
	release chan struct{}
}

func (w *blockingWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *blockingWriter) WriteHeader(int) {}
func (w *blockingWriter) Write(p []byte) (int, error) {
	w.inside <- struct{}{}
	<-w.release
	return len(p), nil
}

// TestShedDisabledByDefault: zero MaxInFlight means no gate at all.
func TestShedDisabledByDefault(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	for i := 0; i < 5; i++ {
		if w := get(t, h, "/v1/countries/AU", nil); w.Code != http.StatusOK {
			t.Fatalf("request %d = %d with no gate configured", i, w.Code)
		}
	}
}

// TestShedLoadgenDistinguishable pins the contract cmd/loadgen relies on to
// separate designed shedding from failure: the gate's 503 carries
// Retry-After, the empty-store 503 does not.
func TestShedLoadgenDistinguishable(t *testing.T) {
	empty := NewHandler(NewStore(nil))
	if w := get(t, empty, "/v1/snapshot", nil); w.Header().Get("Retry-After") != "" {
		t.Error("empty-store 503 carries Retry-After; loadgen would misclassify it as shedding")
	}
}

func TestStoreSwap(t *testing.T) {
	a := Assemble(testData(1), Config{})
	b := Assemble(testData(2), Config{})
	st := NewStore(a)
	if st.Load() != a {
		t.Fatal("Load != initial snapshot")
	}
	if old := st.Swap(b); old != a {
		t.Fatal("Swap did not return the previous snapshot")
	}
	if st.Load() != b {
		t.Fatal("Load != swapped snapshot")
	}
}

// nopWriter is a minimal ResponseWriter for the allocation guard: Header
// returns a reused map (as net/http does for a live connection) and Write
// discards. Anything the handler allocates is therefore the handler's own.
type nopWriter struct {
	hdr  http.Header
	code int
	n    int
}

func (w *nopWriter) Header() http.Header { return w.hdr }
func (w *nopWriter) WriteHeader(c int)   { w.code = c }
func (w *nopWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// TestServeZeroAllocs pins the tentpole property: the 200 and 304 paths of
// every endpoint perform zero heap allocations per request — with access
// logging, SLO accounting, and serving metrics all enabled, and trace
// sampling consulted but declining (rate 0). If this fails, the serving
// hot path regressed — don't loosen the pin, find the alloc.
//
// The access log is deliberately not Started: AllocsPerRun counts mallocs
// process-wide, so a concurrent drainer goroutine emitting slog records
// would pollute the measurement. The producer path — policy decision,
// ring claim, struct copy, and the drop path once the ring fills — runs
// in full.
func TestServeZeroAllocs(t *testing.T) {
	s := testSnapshot(t)
	h := NewHandler(NewStore(s))
	log := obs.NewAccessLog(
		slog.New(slog.NewJSONHandler(io.Discard, nil)),
		obs.AccessLogConfig{Capacity: 64, SampleOK: 1, SlowAfter: time.Hour},
	)
	h.Instrument(Instrumentation{
		Log:         log,
		Requests:    obs.NewReqTracker(1, 0, 0, 0), // sampling off
		SLO:         obs.NewSLO(obs.SLOConfig{Availability: 0.999, LatencyTarget: 0.999, LatencyThreshold: 5 * time.Millisecond}),
		MaxInFlight: 64, // admission gate armed; everything below admits
	})

	cases := []struct {
		name string
		path string
		inm  string
	}{
		{"country 200", "/v1/countries/AU", ""},
		{"country lowercase 200", "/v1/countries/au", ""},
		{"country 304", "/v1/countries/AU", s.CountryETag("AU")},
		{"top 200", "/v1/top/ccg?n=2", ""},
		{"top default-n 200", "/v1/top/ccg", ""},
		{"top 304", "/v1/top/ccg?n=2", s.tops["ccg"][1].etag},
		{"index 200", "/v1/snapshot", ""},
		// The epoch-history page is preserialized at publish (NewStore
		// seeded the ring), so serving it must be as alloc-free as any
		// entity — the drift layer's zero-alloc pin.
		{"history 200", "/v1/countries/AU/history", ""},
		{"history lowercase 200", "/v1/countries/au/history", ""},
		{"history 304", "/v1/countries/AU/history", s.history["AU"].etag},
	}
	for _, c := range cases {
		u, err := url.Parse(c.path)
		if err != nil {
			t.Fatal(err)
		}
		req := &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
		if c.inm != "" {
			req.Header.Set("If-None-Match", c.inm)
		}
		w := &nopWriter{hdr: http.Header{}}
		allocs := testing.AllocsPerRun(200, func() {
			h.ServeHTTP(w, req)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/request, want 0", c.name, allocs)
		}
		wantCode := http.StatusOK
		if c.inm != "" {
			wantCode = http.StatusNotModified
		}
		if w.code != wantCode {
			t.Errorf("%s: status %d, want %d", c.name, w.code, wantCode)
		}
	}

	// The shed path must be zero-alloc too: an overloaded server that
	// allocates per refused request amplifies its own overload. Fill the
	// gate artificially and pin the 503 path.
	h.inflight.Store(64)
	defer h.inflight.Store(0)
	u, err := url.Parse("/v1/countries/AU")
	if err != nil {
		t.Fatal(err)
	}
	req := &http.Request{Method: http.MethodGet, URL: u, Header: http.Header{}}
	w := &nopWriter{hdr: http.Header{}}
	allocs := testing.AllocsPerRun(200, func() {
		h.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Errorf("shed 503: %.1f allocs/request, want 0", allocs)
	}
	if w.code != http.StatusServiceUnavailable {
		t.Errorf("shed path status %d, want 503", w.code)
	}
}
