// Package snapshot renders a ranking run into an immutable, preserialized
// form and serves it over HTTP with a zero-allocation hot path.
//
// A Snapshot is built once — every country page and every /v1/top variant
// is encoded to its final JSON bytes up front, with the ETag (a strong
// content SHA-256) and Content-Length precomputed alongside — and then
// published by an atomic pointer swap (Store). The request path never
// encodes anything: it resolves the preserialized entity, assigns the
// precomputed header slices by reference, answers If-None-Match revalidation
// with a bodyless 304, and otherwise writes the stored bytes verbatim.
// Because snapshots are immutable, rollover under load is safe by
// construction: in-flight requests keep serving the snapshot pointer they
// loaded, new requests observe the new one, and an unpinned old snapshot is
// reclaimed by the garbage collector once the last response referencing it
// completes.
//
// The same encoder backs batch output (asrank -json), so a ranking fetched
// from rankd and one written by a batch run are byte-identical.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"slices"
	"strconv"
	"time"

	"countryrank/internal/core"
	"countryrank/internal/countries"
	"countryrank/internal/obs"
	"countryrank/internal/par"
	"countryrank/internal/rank"
)

// DefaultMaxTopN caps ?n= on the top endpoints (and the per-country list
// length) when Config.MaxTopN is zero.
const DefaultMaxTopN = 100

// Config shapes a snapshot build.
type Config struct {
	// MaxTopN caps the /v1/top ?n= parameter and the per-country entry
	// lists. Zero selects DefaultMaxTopN.
	MaxTopN int
	// Countries restricts which countries the snapshot carries; nil renders
	// every known country that ranked at least one AS.
	Countries []countries.Code
}

func (c Config) maxTopN() int {
	if c.MaxTopN <= 0 {
		return DefaultMaxTopN
	}
	return c.MaxTopN
}

// entity is one preserialized response: the exact bytes a 200 writes, plus
// the header values the hot path assigns by reference (single-element
// slices, so no []string is allocated per request).
type entity struct {
	body    []byte
	etag    string // strong ETag: quoted hex SHA-256 of body
	etagHdr []string
	lenHdr  []string
}

func newEntity(body []byte) *entity {
	sum := sha256.Sum256(body)
	etag := `"` + hex.EncodeToString(sum[:]) + `"`
	return &entity{
		body:    body,
		etag:    etag,
		etagHdr: []string{etag},
		lenHdr:  []string{strconv.Itoa(len(body))},
	}
}

// Snapshot is one immutable rendering of a ranking run. All fields are
// written during assembly and never mutated afterwards; the serving path
// only reads.
type Snapshot struct {
	// Epoch is the publisher's monotonically increasing snapshot number.
	Epoch int64
	// Digest identifies the snapshot content: a SHA-256 over every country
	// body and every full top body, in sorted key order. Two snapshots with
	// the same digest serve byte-identical data (their country ETags agree),
	// so a refresh that recomputes unchanged rankings stays 304-friendly.
	Digest string
	// Degraded marks a snapshot built from a quorum-degraded pipeline (data
	// was lost on ingest). The supervisor's publish gate refuses to replace
	// a healthy snapshot with a degraded one unless explicitly allowed.
	Degraded bool
	// Stale marks a snapshot warm-loaded from disk at boot: the data is the
	// last good publish of a previous process, served while the first real
	// build runs. The index page carries the flag so clients can tell.
	Stale bool
	// SavedAt is when a warm-loaded snapshot was persisted by the previous
	// process (zero for freshly built snapshots); the supervisor uses it to
	// account snapshot age across restarts.
	SavedAt time.Time

	countries map[string]*entity // "AU" → country page
	// tops maps a metric key ("ccg") to its preserialized top-N variants;
	// variant[i] serves n = i+1. An empty ranking keeps one n=0 variant.
	tops    map[string][]*entity
	index   *entity // the /v1/snapshot metadata page
	maxTopN int

	// ranks and topRanks carry the structured rank vectors the entities
	// were rendered from — "AU" → metric → ordered top-K, and top metric
	// key → ordered top-K — so the drift diff engine and the epoch history
	// ring work from data, never by re-parsing served JSON. Nil only for
	// snapshots warm-loaded from a format-v1 generation file.
	ranks    map[string]map[string]RankVec
	topRanks map[string]RankVec

	// history holds the preserialized /v1/countries/{cc}/history pages,
	// rendered by Store.Publish from its epoch ring before the snapshot
	// becomes visible (so serving them is as zero-alloc as any entity).
	// Nil when published through a raw Swap; the endpoint then 404s.
	history map[string]*entity

	// builtAt is when Assemble ran; see BuiltUnix.
	builtAt time.Time
}

// CountryData is one country's rankings as fed to Assemble.
type CountryData struct {
	Code               countries.Code
	Name               string
	CCI, CCN, AHI, AHN *rank.Ranking
}

// TopData is one global top-N endpoint: Metric is the lower-case URL key
// ("ccg", "ahg").
type TopData struct {
	Metric  string
	Ranking *rank.Ranking
}

// Data is the assembly input: already-computed rankings, no pipeline
// machinery. Build gathers it from a core.Pipeline; tests hand-craft it.
type Data struct {
	Epoch     int64
	Countries []CountryData
	Tops      []TopData
	// Degraded labels the snapshot as built from lossy ingest; see
	// Snapshot.Degraded.
	Degraded bool
}

// CountryCodes lists the snapshot's countries in sorted order.
func (s *Snapshot) CountryCodes() []string {
	out := make([]string, 0, len(s.countries))
	for cc := range s.countries {
		out = append(out, cc)
	}
	slices.Sort(out)
	return out
}

// TopMetrics lists the snapshot's top-endpoint metric keys in sorted order.
func (s *Snapshot) TopMetrics() []string {
	out := make([]string, 0, len(s.tops))
	for m := range s.tops {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

// MaxTopN reports the snapshot's ?n= cap.
func (s *Snapshot) MaxTopN() int { return s.maxTopN }

// CountryETag returns the precomputed ETag of cc's page ("" when absent);
// the CI smoke and the rollover test match responses against it.
func (s *Snapshot) CountryETag(cc string) string {
	if e, ok := s.countries[cc]; ok {
		return e.etag
	}
	return ""
}

// CountryBody returns cc's preserialized page (nil when absent). The result
// aliases snapshot-internal state and must not be mutated.
func (s *Snapshot) CountryBody(cc string) []byte {
	if e, ok := s.countries[cc]; ok {
		return e.body
	}
	return nil
}

// IndexBody returns the preserialized /v1/snapshot page.
func (s *Snapshot) IndexBody() []byte { return s.index.body }

// Assemble preserializes the given rankings into an immutable Snapshot.
func Assemble(d Data, cfg Config) *Snapshot {
	k := cfg.maxTopN()
	s := &Snapshot{
		Epoch:     d.Epoch,
		Degraded:  d.Degraded,
		countries: make(map[string]*entity, len(d.Countries)),
		tops:      make(map[string][]*entity, len(d.Tops)),
		maxTopN:   k,
		ranks:     make(map[string]map[string]RankVec, len(d.Countries)),
		topRanks:  make(map[string]RankVec, len(d.Tops)),
		builtAt:   time.Now(),
	}
	for _, cd := range d.Countries {
		s.countries[string(cd.Code)] = newEntity(appendCountry(nil, cd, k))
		s.ranks[string(cd.Code)] = map[string]RankVec{
			"CCI": rankVec(cd.CCI, k), "CCN": rankVec(cd.CCN, k),
			"AHI": rankVec(cd.AHI, k), "AHN": rankVec(cd.AHN, k),
		}
	}
	for _, td := range d.Tops {
		s.tops[td.Metric] = topVariants(td, k)
		s.topRanks[td.Metric] = rankVec(td.Ranking, k)
	}
	s.finish()
	return s
}

// rankVec extracts a ranking's ordered top-k as structured entries — the
// same truncation the rendered JSON applies, so diff and history describe
// exactly what was served.
func rankVec(r *rank.Ranking, k int) RankVec {
	if r == nil {
		return nil
	}
	entries := r.Entries
	if k > 0 && k < len(entries) {
		entries = entries[:k]
	}
	v := make(RankVec, len(entries))
	for i, e := range entries {
		v[i] = RankEntry{ASN: e.ASN, Value: e.Value, Name: e.Info.Name}
	}
	return v
}

// BuiltUnix reports when the snapshot's data was produced: assembly time
// for built snapshots, the previous process's persist time for warm loads.
func (s *Snapshot) BuiltUnix() int64 {
	if !s.SavedAt.IsZero() {
		return s.SavedAt.Unix()
	}
	return s.builtAt.Unix()
}

// finish seals a snapshot whose entity maps are fully populated: it derives
// the content digest and preserializes the index page. The warm-start
// loader shares it with Assemble, so a reconstructed snapshot recomputes
// its digest through exactly the code path that produced the persisted one.
func (s *Snapshot) finish() {
	// The digest covers every body in sorted key order, so it is a function
	// of the served content alone (not of assembly order, epoch, or the
	// stale/degraded markers carried on the index page).
	h := sha256.New()
	for _, cc := range s.CountryCodes() {
		h.Write([]byte("country:" + cc + "\n"))
		h.Write(s.countries[cc].body)
	}
	for _, m := range s.TopMetrics() {
		vs := s.tops[m]
		h.Write([]byte("top:" + m + "\n"))
		h.Write(vs[len(vs)-1].body)
	}
	s.Digest = hex.EncodeToString(h.Sum(nil))
	s.index = newEntity(appendIndex(nil, s))
}

// Build renders the pipeline's rankings into a Snapshot: the four country
// metrics for every requested country (countries that ranked no AS are
// skipped) plus the global CCG/AHG top endpoints. Countries fan out across
// the worker pool; each country runs its own four-kernel computation.
func Build(p *core.Pipeline, epoch int64, cfg Config) *Snapshot {
	sp := obs.StartSpan("snapshot-build")
	defer sp.End()
	list := cfg.Countries
	if list == nil {
		list = countries.All()
	}
	got := make([]*CountryData, len(list))
	par.ForEach(len(list), func(i int) {
		c := list[i]
		cr := p.Country(c)
		if cr.CCI.Len() == 0 && cr.CCN.Len() == 0 && cr.AHI.Len() == 0 && cr.AHN.Len() == 0 {
			return
		}
		got[i] = &CountryData{
			Code: c, Name: countries.Name(c),
			CCI: cr.CCI, CCN: cr.CCN, AHI: cr.AHI, AHN: cr.AHN,
		}
	})
	d := Data{Epoch: epoch, Degraded: p.CoverageInfo().Degraded}
	for _, cd := range got {
		if cd != nil {
			d.Countries = append(d.Countries, *cd)
		}
	}
	ccg, ahg := p.Global()
	d.Tops = []TopData{{Metric: "ccg", Ranking: ccg}, {Metric: "ahg", Ranking: ahg}}
	sp.AddItems(int64(len(d.Countries)), "countries")
	return Assemble(d, cfg)
}

// topVariants preserializes one body per n in [1, min(k, len)] — ~k²/2
// entry encodings, a few hundred KB at the default cap, in exchange for a
// single-write zero-encode response at any n. An empty ranking keeps one
// n=0 variant so the endpoint still answers.
func topVariants(td TopData, k int) []*entity {
	nmax := td.Ranking.Len()
	if nmax > k {
		nmax = k
	}
	if nmax == 0 {
		return []*entity{newEntity(appendTop(nil, td, 0))}
	}
	out := make([]*entity, nmax)
	for n := 1; n <= nmax; n++ {
		out[n-1] = newEntity(appendTop(nil, td, n))
	}
	return out
}

// appendCountry renders one country page:
//
//	{"country":"AU","name":"Australia","metrics":{"CCI":{...},"CCN":{...},"AHI":{...},"AHN":{...}}}
func appendCountry(dst []byte, cd CountryData, k int) []byte {
	dst = append(dst, `{"country":`...)
	dst = appendJSONString(dst, string(cd.Code))
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, cd.Name)
	dst = append(dst, `,"metrics":{`...)
	for i, mr := range []struct {
		key string
		r   *rank.Ranking
	}{{"CCI", cd.CCI}, {"CCN", cd.CCN}, {"AHI", cd.AHI}, {"AHN", cd.AHN}} {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '"')
		dst = append(dst, mr.key...)
		dst = append(dst, `":`...)
		dst = AppendRanking(dst, mr.r, k)
	}
	return append(dst, `}}`...)
}

// appendTop renders one /v1/top variant:
//
//	{"metric":"ccg","n":5,"entries":[...]}
func appendTop(dst []byte, td TopData, n int) []byte {
	dst = append(dst, `{"metric":`...)
	dst = appendJSONString(dst, td.Metric)
	dst = append(dst, `,"n":`...)
	dst = strconv.AppendInt(dst, int64(n), 10)
	dst = append(dst, `,"entries":`...)
	dst = appendEntries(dst, td.Ranking.Top(n))
	return append(dst, '}')
}

// appendIndex renders the /v1/snapshot metadata page. The stale and
// degraded markers ride here — not in the country/top bodies — so a
// warm-started daemon advertises "last good data, possibly old" without
// moving the content digest or any cached ETag.
func appendIndex(dst []byte, s *Snapshot) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendInt(dst, s.Epoch, 10)
	dst = append(dst, `,"digest":`...)
	dst = appendJSONString(dst, s.Digest)
	dst = append(dst, `,"stale":`...)
	dst = strconv.AppendBool(dst, s.Stale)
	dst = append(dst, `,"degraded":`...)
	dst = strconv.AppendBool(dst, s.Degraded)
	dst = append(dst, `,"max_top_n":`...)
	dst = strconv.AppendInt(dst, int64(s.maxTopN), 10)
	dst = append(dst, `,"tops":[`...)
	for i, m := range s.TopMetrics() {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, m)
	}
	dst = append(dst, `],"countries":[`...)
	for i, cc := range s.CountryCodes() {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, cc)
	}
	return append(dst, `]}`...)
}

// AppendRanking appends the JSON encoding of r's top k entries (k <= 0
// means all) to dst:
//
//	{"metric":"CCI AU","entries":[{"rank":1,"asn":1221,"name":"...","country":"AU","value":0.123456},...]}
//
// Values are fixed 6-decimal — the exact strings export.WriteRankingCSV
// writes — so batch CSV, batch JSON (asrank -json), and served snapshot
// bytes all agree on content.
func AppendRanking(dst []byte, r *rank.Ranking, k int) []byte {
	dst = append(dst, `{"metric":`...)
	dst = appendJSONString(dst, r.Metric)
	dst = append(dst, `,"entries":`...)
	entries := r.Entries
	if k > 0 && k < len(entries) {
		entries = entries[:k]
	}
	dst = appendEntries(dst, entries)
	return append(dst, '}')
}

func appendEntries(dst []byte, entries []rank.Entry) []byte {
	dst = append(dst, '[')
	for i, e := range entries {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"rank":`...)
		dst = strconv.AppendInt(dst, int64(e.Rank), 10)
		dst = append(dst, `,"asn":`...)
		dst = strconv.AppendUint(dst, uint64(e.ASN), 10)
		dst = append(dst, `,"name":`...)
		dst = appendJSONString(dst, e.Info.Name)
		dst = append(dst, `,"country":`...)
		dst = appendJSONString(dst, string(e.Info.Country))
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendFloat(dst, e.Value, 'f', 6, 64)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping the quote,
// the backslash, and control characters (RFC 8259 §7). Multi-byte UTF-8
// passes through verbatim, which JSON permits.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c >= 0x20:
			dst = append(dst, c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(dst, '"')
}
