package snapshot

import (
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/export"
	"countryrank/internal/rank"
)

// testInfo resolves presentation metadata for the hand-built rankings, with
// one name exercising JSON escaping.
func testInfo(a asn.ASN) rank.ASInfo {
	switch a {
	case 1221:
		return rank.ASInfo{Name: "Telstra", Country: "AU"}
	case 4826:
		return rank.ASInfo{Name: `Vocus "VOCUS"`, Country: "AU"}
	case 7545:
		return rank.ASInfo{Name: "TPG\tInternet", Country: "AU"}
	}
	return rank.ASInfo{}
}

func testRanking(metric string) *rank.Ranking {
	return rank.New(metric, map[asn.ASN]float64{
		1221: 0.51, 4826: 0.2625, 7545: 0.125, 9999: 0,
	}, testInfo, true)
}

// TestAppendRankingMatchesCSV pins the batch/served equivalence the -json
// flag promises: the JSON encoding carries exactly the rows, fields, and
// value strings export.WriteRankingCSV writes.
func TestAppendRankingMatchesCSV(t *testing.T) {
	r := testRanking("CCI AU")

	var buf strings.Builder
	if err := export.WriteRankingCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	rows = rows[1:] // header

	var got struct {
		Metric  string `json:"metric"`
		Entries []struct {
			Rank    int             `json:"rank"`
			ASN     uint32          `json:"asn"`
			Name    string          `json:"name"`
			Country string          `json:"country"`
			Value   json.RawMessage `json:"value"` // raw: compare the exact digits
		} `json:"entries"`
	}
	enc := AppendRanking(nil, r, 0)
	if err := json.Unmarshal(enc, &got); err != nil {
		t.Fatalf("AppendRanking produced invalid JSON: %v\n%s", err, enc)
	}
	if got.Metric != "CCI AU" {
		t.Errorf("metric = %q", got.Metric)
	}
	if len(got.Entries) != len(rows) {
		t.Fatalf("JSON has %d entries, CSV has %d rows", len(got.Entries), len(rows))
	}
	for i, e := range got.Entries {
		row := rows[i]
		if strconv.Itoa(e.Rank) != row[0] || strconv.FormatUint(uint64(e.ASN), 10) != row[1] ||
			e.Name != row[2] || e.Country != row[3] || string(e.Value) != row[4] {
			t.Errorf("entry %d: JSON {%d %d %q %q %s} != CSV row %v",
				i, e.Rank, e.ASN, e.Name, e.Country, e.Value, row)
		}
	}
}

// TestAppendRankingTopK checks the k truncation asrank -top relies on.
func TestAppendRankingTopK(t *testing.T) {
	r := testRanking("AHG")
	var got struct {
		Entries []json.RawMessage `json:"entries"`
	}
	for k, want := range map[int]int{0: 3, 1: 1, 2: 2, 50: 3, -1: 3} {
		if err := json.Unmarshal(AppendRanking(nil, r, k), &got); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(got.Entries) != want {
			t.Errorf("k=%d: %d entries, want %d", k, len(got.Entries), want)
		}
	}
}

// TestAppendJSONStringEscaping pins the escaping rules against the stdlib
// decoder: whatever we emit must round-trip to the original string.
func TestAppendJSONStringEscaping(t *testing.T) {
	for _, s := range []string{
		"", "plain", `has "quotes"`, `back\slash`, "tab\there",
		"new\nline", "carriage\rreturn", "ctrl\x01\x1f", "utf8 Ünïcødé 日本",
	} {
		enc := appendJSONString(nil, s)
		var back string
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("%q encoded to invalid JSON %s: %v", s, enc, err)
		}
		if back != s {
			t.Errorf("round trip %q -> %s -> %q", s, enc, back)
		}
	}
}

func testData(epoch int64) Data {
	return Data{
		Epoch: epoch,
		Countries: []CountryData{{
			Code: "AU", Name: countries.Name("AU"),
			CCI: testRanking("CCI AU"), CCN: testRanking("CCN AU"),
			AHI: testRanking("AHI AU"), AHN: testRanking("AHN AU"),
		}, {
			Code: "JP", Name: countries.Name("JP"),
			CCI: testRanking("CCI JP"), CCN: testRanking("CCN JP"),
			AHI: testRanking("AHI JP"), AHN: testRanking("AHN JP"),
		}},
		Tops: []TopData{
			{Metric: "ccg", Ranking: testRanking("CCG")},
			{Metric: "ahg", Ranking: testRanking("AHG")},
		},
	}
}

// TestAssemble checks the preserialized layout: valid JSON everywhere,
// correct variant counts, ETag/Content-Length agreement, and an index page
// naming everything.
func TestAssemble(t *testing.T) {
	s := Assemble(testData(3), Config{})
	if got := s.CountryCodes(); len(got) != 2 || got[0] != "AU" || got[1] != "JP" {
		t.Fatalf("CountryCodes = %v", got)
	}
	if got := s.TopMetrics(); len(got) != 2 || got[0] != "ahg" || got[1] != "ccg" {
		t.Fatalf("TopMetrics = %v", got)
	}

	var page struct {
		Country string                     `json:"country"`
		Name    string                     `json:"name"`
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(s.CountryBody("AU"), &page); err != nil {
		t.Fatalf("country page invalid JSON: %v", err)
	}
	if page.Country != "AU" || page.Name != "Australia" {
		t.Errorf("page = %q %q", page.Country, page.Name)
	}
	for _, m := range []string{"CCI", "CCN", "AHI", "AHN"} {
		if _, ok := page.Metrics[m]; !ok {
			t.Errorf("country page missing metric %s", m)
		}
	}

	// Three ranked ASes → three top variants, n embedded in each.
	vs := s.tops["ccg"]
	if len(vs) != 3 {
		t.Fatalf("ccg variants = %d, want 3", len(vs))
	}
	for i, v := range vs {
		var top struct {
			Metric  string            `json:"metric"`
			N       int               `json:"n"`
			Entries []json.RawMessage `json:"entries"`
		}
		if err := json.Unmarshal(v.body, &top); err != nil {
			t.Fatalf("top variant %d invalid JSON: %v", i, err)
		}
		if top.Metric != "ccg" || top.N != i+1 || len(top.Entries) != i+1 {
			t.Errorf("variant %d: metric=%q n=%d entries=%d", i, top.Metric, top.N, len(top.Entries))
		}
		if v.lenHdr[0] != strconv.Itoa(len(v.body)) {
			t.Errorf("variant %d Content-Length %s != %d", i, v.lenHdr[0], len(v.body))
		}
		if !strings.HasPrefix(v.etag, `"`) || !strings.HasSuffix(v.etag, `"`) || len(v.etag) != 66 {
			t.Errorf("variant %d etag %q not a quoted sha256", i, v.etag)
		}
	}

	var idx struct {
		Epoch     int64    `json:"epoch"`
		Digest    string   `json:"digest"`
		MaxTopN   int      `json:"max_top_n"`
		Tops      []string `json:"tops"`
		Countries []string `json:"countries"`
	}
	if err := json.Unmarshal(s.IndexBody(), &idx); err != nil {
		t.Fatalf("index invalid JSON: %v", err)
	}
	if idx.Epoch != 3 || idx.Digest != s.Digest || idx.MaxTopN != DefaultMaxTopN {
		t.Errorf("index = %+v (snapshot digest %s)", idx, s.Digest)
	}
	if len(idx.Countries) != 2 || len(idx.Tops) != 2 {
		t.Errorf("index lists %v %v", idx.Countries, idx.Tops)
	}
}

// TestDigestContentAddressed checks that the digest depends on served
// content only: same data at a different epoch keeps the digest (and every
// country ETag), while changed data moves it.
func TestDigestContentAddressed(t *testing.T) {
	a := Assemble(testData(1), Config{})
	b := Assemble(testData(2), Config{})
	if a.Digest != b.Digest {
		t.Errorf("digest changed with epoch alone: %s vs %s", a.Digest, b.Digest)
	}
	if a.CountryETag("AU") != b.CountryETag("AU") {
		t.Errorf("country ETag changed with epoch alone")
	}
	if string(a.IndexBody()) == string(b.IndexBody()) {
		t.Errorf("index should differ across epochs")
	}

	d := testData(1)
	d.Countries = d.Countries[:1]
	c := Assemble(d, Config{})
	if c.Digest == a.Digest {
		t.Errorf("digest unchanged after dropping a country")
	}
}

// TestMaxTopNCapsVariants checks Config.MaxTopN truncation.
func TestMaxTopNCapsVariants(t *testing.T) {
	s := Assemble(testData(1), Config{MaxTopN: 2})
	if len(s.tops["ccg"]) != 2 {
		t.Errorf("variants = %d, want 2", len(s.tops["ccg"]))
	}
	var page struct {
		Metrics map[string]struct {
			Entries []json.RawMessage `json:"entries"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(s.CountryBody("AU"), &page); err != nil {
		t.Fatal(err)
	}
	if n := len(page.Metrics["CCI"].Entries); n != 2 {
		t.Errorf("country page CCI entries = %d, want 2", n)
	}
}

// TestEmptyRankingVariant: a metric that ranked nothing still answers.
func TestEmptyRankingVariant(t *testing.T) {
	empty := rank.New("CCG", nil, nil, true)
	s := Assemble(Data{Tops: []TopData{{Metric: "ccg", Ranking: empty}}}, Config{})
	vs := s.tops["ccg"]
	if len(vs) != 1 {
		t.Fatalf("variants = %d, want 1", len(vs))
	}
	var top struct {
		N       int               `json:"n"`
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(vs[0].body, &top); err != nil {
		t.Fatal(err)
	}
	if top.N != 0 || len(top.Entries) != 0 {
		t.Errorf("empty variant n=%d entries=%d", top.N, len(top.Entries))
	}
}
