package snapshot

// The Supervisor owns the rebuild lifecycle so the serving path never has
// to: builds run in a supervised goroutine with panic recovery, a per-build
// timeout, jittered exponential backoff on failure, and trigger coalescing.
// The daemon's contract — "serve the last good snapshot, clearly marked
// stale; never serve nothing" — is enforced here:
//
//   - A build that panics, errors, or hangs leaves the published snapshot
//     untouched; the supervisor logs, counts, backs off, and retries.
//   - A quorum-degraded build does not replace a healthy snapshot unless
//     AllowDegraded is set (it is accepted into an empty store, because
//     degraded data still beats no data).
//   - Triggers (SIGHUP, refresh tick) arriving mid-build or mid-backoff
//     coalesce into at most one pending rebuild.
//   - Close cancels the in-flight build's context and returns once the
//     loop drains; a hung build function cannot wedge shutdown — its
//     goroutine is abandoned and its late result discarded.
//
// State machine (one goroutine, run):
//
//	idle ──trigger──▶ building ──ok──▶ publish ──▶ idle
//	                   │  │
//	                   │  └─fail/panic/timeout──▶ backoff ──retry──▶ building
//	                   └─degraded & gated────────▶ idle (last-good kept)
//
// A trigger in `building` or `backoff` sets the pending flag; `backoff` is
// cut short by Close only.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"countryrank/internal/obs"
)

var (
	mBuilds = obs.NewCounter("countryrank_rankd_builds_total",
		"snapshot rebuild attempts started by the supervisor")
	mBuildFailures = obs.NewCounter("countryrank_rankd_build_failures_total",
		"rebuilds that returned an error or exceeded the build timeout")
	mBuildPanics = obs.NewCounter("countryrank_rankd_build_panics_total",
		"rebuilds that panicked (recovered; last-good snapshot kept serving)")
	mDegradedRejects = obs.NewCounter("countryrank_rankd_degraded_rejects_total",
		"degraded builds refused by the publish gate while a healthy snapshot was serving")
	mDriftRejects = obs.NewCounter("countryrank_rankd_drift_rejects_total",
		"builds refused by the drift gate (churn score over -drift-gate)")
	mSnapAge = obs.NewFloatGauge("countryrank_rankd_snapshot_age_seconds",
		"seconds since the served snapshot's data was built (persist time for warm-loaded snapshots)")
)

// errDegradedRejected marks a build completion that the publish gate
// refused; it is not a failure and does not back off.
var errDegradedRejected = errors.New("snapshot: degraded build rejected by publish gate")

// errDriftRejected marks a build whose churn exceeded the drift gate.
// Like a degraded rejection it is not a failure: the supervisor logs,
// counts, and waits for the next trigger without backing off.
var errDriftRejected = errors.New("snapshot: build rejected by drift gate")

// SupervisorConfig shapes the rebuild loop.
type SupervisorConfig struct {
	// Build produces the next snapshot for the given epoch. It runs on the
	// supervisor's build goroutine and should honor ctx for cancellation;
	// even if it does not, a timeout or shutdown abandons it (the loop
	// moves on and the late result is discarded).
	Build func(ctx context.Context, epoch int64) (*Snapshot, error)
	// BuildTimeout bounds one build attempt; 0 means no timeout.
	BuildTimeout time.Duration
	// BaseBackoff/MaxBackoff shape the jittered exponential retry delay
	// after a failed build (same shape as the collector feeder: double from
	// base, cap at max, jitter to 50–150%). Zero values pick 1s/1m.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AllowDegraded lets a quorum-degraded build replace a healthy
	// snapshot. Default off: degraded data only publishes into an empty
	// store or over an already-degraded snapshot.
	AllowDegraded bool
	// DriftGate, when positive, refuses to publish a build whose drift
	// churn score (Drift.MaxChurn vs the outgoing snapshot) exceeds it —
	// an implausibly large rank shuffle is more often an ingest bug than
	// the world changing. Treated like the degraded gate: logged, counted,
	// no backoff, last-good snapshot keeps serving.
	DriftGate float64
	// AllowDrift overrides DriftGate (the gate stays computed and logged).
	AllowDrift bool
	// StaleAfter flips Ready to false when the served snapshot's age
	// exceeds it; 0 disables staleness-based unreadiness.
	StaleAfter time.Duration
	// Persist, when non-nil, durably saves every published snapshot.
	Persist *Persister
	// OnPublish, when non-nil, observes every snapshot the supervisor
	// publishes (after the store swap and the durable save). Called from
	// the supervisor goroutine.
	OnPublish func(s *Snapshot)
	// Seed feeds the backoff jitter; 0 derives from the current time.
	Seed int64
}

func (c SupervisorConfig) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return time.Second
	}
	return c.BaseBackoff
}

func (c SupervisorConfig) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return time.Minute
	}
	return c.MaxBackoff
}

// buildResult crosses from the build goroutine back to the loop.
type buildResult struct {
	snap     *Snapshot
	err      error
	panicked bool
}

// Supervisor runs the publish loop. Create with NewSupervisor, feed it with
// Trigger, stop it with Close.
type Supervisor struct {
	store *Store
	cfg   SupervisorConfig
	rng   *rand.Rand // loop goroutine only

	trigger chan string // cap 1: pending-rebuild flag with a reason
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	epoch       atomic.Int64
	publishedAt atomic.Int64 // unix nanos of the served snapshot's data time
	lastDrift   atomic.Pointer[Drift]
	closeOnce   sync.Once

	// ageTick is overridable by tests; defaults to 1s.
	ageTick time.Duration
}

// NewSupervisor starts the rebuild loop over st. The store may already hold
// a warm-loaded snapshot (its SavedAt seeds the age accounting) or be
// empty. firstEpoch is the epoch the next build publishes.
func NewSupervisor(st *Store, firstEpoch int64, cfg SupervisorConfig) *Supervisor {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Supervisor{
		store:   st,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		trigger: make(chan string, 1),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		ageTick: time.Second,
	}
	s.epoch.Store(firstEpoch - 1)
	if warm := st.Load(); warm != nil {
		at := warm.SavedAt
		if at.IsZero() {
			at = time.Now()
		}
		s.publishedAt.Store(at.UnixNano())
		s.refreshAge()
	}
	go s.run()
	return s
}

// Trigger requests a rebuild. Non-blocking: a trigger arriving while a
// build is running (or one is already pending) coalesces — the loop runs at
// most one more build after the current one, which is correct because a
// build started after the trigger observes all state the trigger meant to
// pick up.
func (s *Supervisor) Trigger(reason string) {
	select {
	case s.trigger <- reason:
	default: // already pending; coalesce
	}
}

// Epoch returns the last epoch the supervisor assigned to a build.
func (s *Supervisor) Epoch() int64 { return s.epoch.Load() }

// LastDrift returns the drift of the most recent publish that replaced an
// existing snapshot (nil before the second publish, or when either side
// lacked rank vectors).
func (s *Supervisor) LastDrift() *Drift { return s.lastDrift.Load() }

// Age returns how long ago the served snapshot's data was produced (the
// previous process's persist time for warm-loaded snapshots). Zero when
// nothing is published yet.
func (s *Supervisor) Age() time.Duration {
	at := s.publishedAt.Load()
	if at == 0 {
		return 0
	}
	return time.Since(time.Unix(0, at))
}

// Ready reports readiness: a snapshot is published and, when StaleAfter is
// set, its age is within bounds. The detail string explains a false.
func (s *Supervisor) Ready() (string, bool) {
	snap := s.store.Load()
	if snap == nil {
		return "no snapshot published", false
	}
	if s.cfg.StaleAfter > 0 {
		if age := s.Age(); age > s.cfg.StaleAfter {
			return fmt.Sprintf("snapshot stale: age %s exceeds %s",
				age.Round(time.Second), s.cfg.StaleAfter), false
		}
	}
	if snap.Stale {
		return "serving warm-loaded snapshot (rebuild pending)", true
	}
	return "ok", true
}

// Close cancels any in-flight build and stops the loop; it returns once
// the loop goroutine has exited. Safe to call more than once.
func (s *Supervisor) Close() {
	s.closeOnce.Do(s.cancel)
	<-s.done
}

func (s *Supervisor) refreshAge() { mSnapAge.Set(s.Age().Seconds()) }

// run is the supervisor loop: waits for triggers, runs builds, publishes,
// backs off on failure. Exits when the supervisor context is canceled.
func (s *Supervisor) run() {
	defer close(s.done)
	age := time.NewTicker(s.ageTick)
	defer age.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-age.C:
			s.refreshAge()
		case reason := <-s.trigger:
			s.buildUntilPublished(reason)
		}
	}
}

// buildUntilPublished attempts builds with backoff until one publishes, the
// publish gate rejects a degraded result (not a failure; give up until the
// next trigger), or shutdown. Triggers that arrive during the attempt are
// coalesced by the 1-cap channel and served by the caller's next loop turn.
func (s *Supervisor) buildUntilPublished(reason string) {
	for attempt := 1; ; attempt++ {
		err := s.buildOnce(reason)
		if err == nil || errors.Is(err, errDegradedRejected) ||
			errors.Is(err, errDriftRejected) || s.ctx.Err() != nil {
			return
		}
		d := backoffDelay(s.rng, s.cfg.baseBackoff(), s.cfg.maxBackoff(), attempt)
		slog.Warn("snapshot build failed; backing off",
			"reason", reason, "attempt", attempt, "backoff", d.Round(time.Millisecond), "err", err)
		t := time.NewTimer(d)
		select {
		case <-s.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// buildOnce runs a single supervised build attempt and publishes on
// success. The build function runs on its own goroutine so a hang can be
// abandoned: the result channel is buffered, so a late completion after
// timeout sends without blocking and is simply never read.
func (s *Supervisor) buildOnce(reason string) error {
	epoch := s.epoch.Add(1)
	mBuilds.Inc()
	ctx := s.ctx
	cancel := context.CancelFunc(func() {})
	if s.cfg.BuildTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.BuildTimeout)
	}
	defer cancel()

	resc := make(chan buildResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				resc <- buildResult{err: fmt.Errorf("snapshot: build panicked: %v", r), panicked: true}
			}
		}()
		snap, err := s.cfg.Build(ctx, epoch)
		resc <- buildResult{snap: snap, err: err}
	}()

	var res buildResult
	select {
	case res = <-resc:
	case <-ctx.Done():
		// Timeout or shutdown. The build goroutine may still be running if
		// Build ignores ctx; abandon it — the buffered channel absorbs its
		// eventual result, and an abandoned build's snapshot is unreachable
		// so it is garbage-collected.
		if s.ctx.Err() != nil {
			return s.ctx.Err() // shutdown: not a failure, no backoff
		}
		mBuildFailures.Inc()
		s.epoch.Add(-1) // epoch not consumed: the attempt produced nothing
		return fmt.Errorf("snapshot: build timed out after %s", s.cfg.BuildTimeout)
	}

	switch {
	case res.panicked:
		mBuildPanics.Inc()
		mBuildFailures.Inc()
		s.epoch.Add(-1)
		slog.Error("snapshot build panicked; last-good snapshot keeps serving",
			"reason", reason, "epoch", epoch, "err", res.err)
		return res.err
	case res.err != nil:
		mBuildFailures.Inc()
		s.epoch.Add(-1)
		if s.ctx.Err() != nil {
			return s.ctx.Err()
		}
		return res.err
	case res.snap == nil:
		mBuildFailures.Inc()
		s.epoch.Add(-1)
		return errors.New("snapshot: build returned nil snapshot without error")
	}

	next := res.snap
	cur := s.store.Load()
	if next.Degraded && !s.cfg.AllowDegraded && cur != nil && !cur.Degraded {
		mDegradedRejects.Inc()
		s.epoch.Add(-1)
		slog.Warn("degraded build rejected; healthy snapshot keeps serving",
			"reason", reason, "rejected_digest", shortDigest(next.Digest),
			"serving_digest", shortDigest(cur.Digest))
		return errDegradedRejected
	}

	// Warm-start verification: the first real build replaces a disk-loaded
	// snapshot, so compare content digests — matching means the persisted
	// generation was byte-exact with what this process computes.
	if cur != nil && cur.Stale {
		if cur.Digest == next.Digest {
			slog.Info("warm-start verified: persisted snapshot matches rebuilt content",
				"digest", shortDigest(next.Digest))
		} else {
			slog.Warn("warm-start content drift: rebuilt snapshot differs from persisted generation",
				"persisted", shortDigest(cur.Digest), "rebuilt", shortDigest(next.Digest))
		}
	}

	// Drift: every rollover that replaces a snapshot with rank vectors is
	// diffed against it, and the gate (when armed) refuses an implausibly
	// churny build the same way the degraded gate refuses lossy data.
	drift := Diff(cur, next)
	if drift != nil && s.cfg.DriftGate > 0 && drift.MaxChurn > s.cfg.DriftGate {
		if s.cfg.AllowDrift {
			slog.Warn("drift gate exceeded but overridden (-allow-drift)",
				"reason", reason, "churn", drift.MaxChurn, "gate", s.cfg.DriftGate)
		} else {
			mDriftRejects.Inc()
			s.epoch.Add(-1)
			slog.Warn("drift gate: build rejected; last-good snapshot keeps serving",
				"reason", reason, "churn", drift.MaxChurn, "gate", s.cfg.DriftGate,
				"rejected_digest", shortDigest(next.Digest),
				"serving_digest", shortDigest(cur.Digest),
				"drift", drift.Summary())
			return errDriftRejected
		}
	}

	old := s.store.Publish(next, drift)
	s.publishedAt.Store(time.Now().UnixNano())
	s.refreshAge()
	if drift != nil {
		drift.Export()
		s.lastDrift.Store(drift)
		slog.Info("snapshot drift", "reason", reason, "summary", drift.Summary())
	}
	slog.Info("snapshot published", "reason", reason, "epoch", next.Epoch,
		"digest", shortDigest(next.Digest), "degraded", next.Degraded,
		"changed", old == nil || old.Digest != next.Digest)

	if s.cfg.Persist != nil {
		if path, err := s.cfg.Persist.Save(next); err != nil {
			// Durability is best-effort relative to serving: the swap
			// already happened and stands.
			slog.Error("snapshot persist failed", "epoch", next.Epoch, "err", err)
		} else {
			slog.Info("snapshot persisted", "epoch", next.Epoch, "path", path)
		}
	}
	if s.cfg.OnPublish != nil {
		s.cfg.OnPublish(next)
	}
	return nil
}

// backoffDelay is the collector feeder's backoff shape: exponential from
// base, capped at max, jittered to 50–150% of the nominal delay.
func backoffDelay(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}
