package snapshot

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastBackoff keeps supervisor tests quick without changing the shape.
var fastBackoff = SupervisorConfig{BaseBackoff: 5 * time.Millisecond, MaxBackoff: 40 * time.Millisecond, Seed: 42}

// TestSupervisorPublishes is the plain path: one trigger, one build, one
// publish, epoch and age accounted.
func TestSupervisorPublishes(t *testing.T) {
	st := NewStore(nil)
	cfg := fastBackoff
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		return Assemble(testData(epoch), Config{}), nil
	}
	sup := NewSupervisor(st, 1, cfg)
	defer sup.Close()

	if _, ready := sup.Ready(); ready {
		t.Error("ready before any publish")
	}
	sup.Trigger("test")
	waitFor(t, 2*time.Second, "first publish", func() bool { return st.Load() != nil })
	snap := st.Load()
	if snap.Epoch != 1 || snap.Stale {
		t.Errorf("published epoch=%d stale=%v, want 1/false", snap.Epoch, snap.Stale)
	}
	if detail, ready := sup.Ready(); !ready {
		t.Errorf("not ready after publish: %s", detail)
	}
	if sup.Age() <= 0 || sup.Age() > time.Minute {
		t.Errorf("age %v implausible for a fresh publish", sup.Age())
	}
}

// TestSupervisorPanicRecovery pins the headline guarantee: a panicking
// build leaves the published snapshot serving, is counted, and is retried
// until a build succeeds.
func TestSupervisorPanicRecovery(t *testing.T) {
	good := Assemble(testData(1), Config{})
	st := NewStore(good)
	panics0 := mBuildPanics.Value()

	var attempts atomic.Int64
	cfg := fastBackoff
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		if attempts.Add(1) <= 2 {
			panic(fmt.Sprintf("chaos panic on attempt %d", attempts.Load()))
		}
		return Assemble(testData(epoch), Config{}), nil
	}
	sup := NewSupervisor(st, 2, cfg)
	defer sup.Close()
	sup.Trigger("test")

	waitFor(t, 5*time.Second, "publish after panics", func() bool {
		s := st.Load()
		return s != nil && s.Epoch == 2
	})
	if n := attempts.Load(); n != 3 {
		t.Errorf("build ran %d times, want 3 (2 panics + 1 success)", n)
	}
	if d := mBuildPanics.Value() - panics0; d != 2 {
		t.Errorf("panic counter moved by %d, want 2", d)
	}
}

// TestSupervisorBackoffJitter checks failed builds honor the jittered
// exponential delay: every retry gap is at least half the nominal delay
// (the jitter floor) and the nominal delay doubles per attempt.
func TestSupervisorBackoffJitter(t *testing.T) {
	st := NewStore(nil)
	var mu sync.Mutex
	var times []time.Time
	cfg := SupervisorConfig{BaseBackoff: 30 * time.Millisecond, MaxBackoff: time.Second, Seed: 7}
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n <= 3 {
			return nil, errors.New("transient failure")
		}
		return Assemble(testData(epoch), Config{}), nil
	}
	sup := NewSupervisor(st, 1, cfg)
	defer sup.Close()
	sup.Trigger("test")
	waitFor(t, 5*time.Second, "publish after retries", func() bool { return st.Load() != nil })

	mu.Lock()
	defer mu.Unlock()
	if len(times) != 4 {
		t.Fatalf("build ran %d times, want 4", len(times))
	}
	// Attempt k fails → delay nominal 30ms·2^(k-1), jittered to [50%,150%].
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		nominal := cfg.BaseBackoff << (i - 1)
		if gap < nominal/2 {
			t.Errorf("retry %d after %v, below jitter floor %v", i, gap, nominal/2)
		}
		if gap > 3*nominal+time.Second {
			t.Errorf("retry %d after %v, far above jitter ceiling", i, gap)
		}
	}
}

// TestSupervisorCoalescing pins trigger coalescing: five triggers landing
// while a build is in flight collapse into exactly one follow-up build.
func TestSupervisorCoalescing(t *testing.T) {
	st := NewStore(nil)
	var started atomic.Int64
	gate := make(chan struct{})
	cfg := fastBackoff
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		started.Add(1)
		<-gate // hold the build until the test releases it
		return Assemble(testData(epoch), Config{}), nil
	}
	sup := NewSupervisor(st, 1, cfg)
	defer sup.Close()

	sup.Trigger("first")
	waitFor(t, 2*time.Second, "first build to start", func() bool { return started.Load() == 1 })
	for i := 0; i < 5; i++ {
		sup.Trigger("mid-build") // all five must coalesce into one pending
	}
	gate <- struct{}{} // finish build 1
	waitFor(t, 2*time.Second, "coalesced build to start", func() bool { return started.Load() == 2 })
	gate <- struct{}{} // finish build 2
	waitFor(t, 2*time.Second, "second publish", func() bool {
		s := st.Load()
		return s != nil && s.Epoch == 2
	})

	// No third build may follow: the five triggers were one pending flag.
	time.Sleep(50 * time.Millisecond)
	if n := started.Load(); n != 2 {
		t.Errorf("%d builds for 1+5 triggers, want exactly 2", n)
	}
}

// TestSupervisorDegradedGate pins the publish gate in all three positions:
// degraded-over-healthy rejected (and not retried — rejection is not
// failure), degraded-into-empty accepted, and -allow-degraded overriding.
func TestSupervisorDegradedGate(t *testing.T) {
	degradedData := func(epoch int64) Data {
		d := testData(epoch)
		d.Degraded = true
		return d
	}

	t.Run("rejected over healthy", func(t *testing.T) {
		healthy := Assemble(testData(1), Config{})
		st := NewStore(healthy)
		rejects0 := mDegradedRejects.Value()
		var builds atomic.Int64
		cfg := fastBackoff
		cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
			builds.Add(1)
			return Assemble(degradedData(epoch), Config{}), nil
		}
		sup := NewSupervisor(st, 2, cfg)
		defer sup.Close()
		sup.Trigger("test")
		waitFor(t, 2*time.Second, "degraded rejection", func() bool {
			return mDegradedRejects.Value() > rejects0
		})
		time.Sleep(30 * time.Millisecond) // would-be backoff window
		if st.Load() != healthy {
			t.Error("degraded build replaced the healthy snapshot")
		}
		if n := builds.Load(); n != 1 {
			t.Errorf("rejection retried the build %d times; rejection is not failure", n-1)
		}
	})

	t.Run("accepted into empty store", func(t *testing.T) {
		st := NewStore(nil)
		cfg := fastBackoff
		cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
			return Assemble(degradedData(epoch), Config{}), nil
		}
		sup := NewSupervisor(st, 1, cfg)
		defer sup.Close()
		sup.Trigger("test")
		waitFor(t, 2*time.Second, "degraded publish into empty store", func() bool {
			s := st.Load()
			return s != nil && s.Degraded
		})
	})

	t.Run("allow-degraded overrides", func(t *testing.T) {
		healthy := Assemble(testData(1), Config{})
		st := NewStore(healthy)
		cfg := fastBackoff
		cfg.AllowDegraded = true
		cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
			return Assemble(degradedData(epoch), Config{}), nil
		}
		sup := NewSupervisor(st, 2, cfg)
		defer sup.Close()
		sup.Trigger("test")
		waitFor(t, 2*time.Second, "degraded publish over healthy", func() bool {
			s := st.Load()
			return s != nil && s.Degraded && s.Epoch == 2
		})
	})
}

// TestSupervisorAbandonsHungBuild pins the hang path: a build that ignores
// its context is abandoned at BuildTimeout, counted as a failure, and the
// retry publishes while the hung goroutine's late result is discarded.
func TestSupervisorAbandonsHungBuild(t *testing.T) {
	st := NewStore(nil)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unwedge the hung goroutine at test end
	var attempts atomic.Int64
	cfg := fastBackoff
	cfg.BuildTimeout = 30 * time.Millisecond
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		if attempts.Add(1) == 1 {
			<-release // hang, ignoring ctx entirely
			return Assemble(testData(999), Config{}), nil
		}
		return Assemble(testData(epoch), Config{}), nil
	}
	fails0 := mBuildFailures.Value()
	sup := NewSupervisor(st, 1, cfg)
	defer sup.Close()
	sup.Trigger("test")

	waitFor(t, 5*time.Second, "publish after hang", func() bool { return st.Load() != nil })
	if got := st.Load().Epoch; got == 999 {
		t.Error("abandoned build's snapshot was published")
	}
	if mBuildFailures.Value() == fails0 {
		t.Error("hung build not counted as a failure")
	}
}

// TestSupervisorShutdownCancelsBuild is the SIGTERM regression test: Close
// during a deliberately slow (but context-honoring) build must cancel it
// and return promptly, and the supervisor must not leak goroutines.
func TestSupervisorShutdownCancelsBuild(t *testing.T) {
	beforeGoroutines := runtime.NumGoroutine()

	st := NewStore(nil)
	buildStarted := make(chan struct{})
	var canceled atomic.Bool
	cfg := fastBackoff
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		close(buildStarted)
		select {
		case <-ctx.Done(): // the slow build honors cancellation
			canceled.Store(true)
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return Assemble(testData(epoch), Config{}), nil
		}
	}
	sup := NewSupervisor(st, 1, cfg)
	sup.Trigger("test")
	<-buildStarted

	done := make(chan struct{})
	go func() { sup.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return within 2s of a 30s build: shutdown waited for the build")
	}
	// Close cancels the context and returns without waiting for the build
	// goroutine to observe it; give the observation a moment.
	waitFor(t, 2*time.Second, "build to observe cancellation", func() bool {
		return canceled.Load()
	})
	if st.Load() != nil {
		t.Error("canceled build still published")
	}
	sup.Close() // idempotent

	waitFor(t, 2*time.Second, "goroutines to unwind", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= beforeGoroutines
	})
}

// TestSupervisorStaleReadiness checks the /readyz contract: a warm-loaded
// snapshot older than StaleAfter reports not-ready while still serving.
func TestSupervisorStaleReadiness(t *testing.T) {
	warm := Assemble(testData(1), Config{})
	warm.Stale = true
	warm.SavedAt = time.Now().Add(-time.Hour) // persisted an hour ago
	st := NewStore(warm)
	cfg := fastBackoff
	cfg.StaleAfter = time.Minute
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		return Assemble(testData(epoch), Config{}), nil
	}
	sup := NewSupervisor(st, 2, cfg)
	defer sup.Close()

	if detail, ready := sup.Ready(); ready {
		t.Errorf("hour-old snapshot with 1m threshold reports ready (%s)", detail)
	}
	// The data is still served despite unreadiness — that is the point.
	if st.Load() == nil {
		t.Fatal("stale snapshot dropped")
	}
	// A successful rebuild restores readiness.
	sup.Trigger("rebuild")
	waitFor(t, 2*time.Second, "readiness after rebuild", func() bool {
		_, ready := sup.Ready()
		return ready
	})
}

// TestSupervisorChaos drives the supervisor with a seeded schedule of build
// outcomes — ok, panic, error, hang, degraded — under live HTTP load, then
// kill-and-restarts from the durable store. The invariants:
//
//  1. Serving never breaks: every response is a 200 whose ETag/body pair
//     belongs to some published snapshot.
//  2. A degraded build never displaces a healthy snapshot.
//  3. After a simulated crash, a fresh process warm-starts from disk and
//     serves the last published content — marked stale — before any
//     rebuild.
func TestSupervisorChaos(t *testing.T) {
	dir := t.TempDir()
	persist, err := NewPersister(dir, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Distinct content per epoch so every publish changes the AU body.
	buildData := func(epoch int64) Data {
		d := testData(epoch)
		d.Countries = d.Countries[:1] // AU only; faster
		r := testRanking(fmt.Sprintf("CCI AU e%d", epoch))
		d.Countries[0].CCI = r
		return d
	}

	var mu sync.Mutex
	// valid maps ETag → body for every snapshot a build *produced* —
	// registered before the supervisor can swap it in, so a client racing
	// the publish never sees an unregistered response. (A rejected degraded
	// snapshot lands here too; harmless, since it is never served.)
	valid := map[string]string{}
	published := 0
	var lastGood *Snapshot
	produce := func(s *Snapshot) *Snapshot {
		mu.Lock()
		valid[s.CountryETag("AU")] = string(s.CountryBody("AU"))
		mu.Unlock()
		return s
	}

	schedule := "peohdpeod" // panic, error, ok, hang, degraded, ...
	var step atomic.Int64
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	cfg := SupervisorConfig{
		BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		BuildTimeout: 25 * time.Millisecond, Seed: 1, Persist: persist,
	}
	cfg.Build = func(ctx context.Context, epoch int64) (*Snapshot, error) {
		i := int(step.Add(1)) - 1
		op := byte('o')
		if i < len(schedule) {
			op = schedule[i]
		}
		switch op {
		case 'p':
			panic("chaos: scheduled panic")
		case 'e':
			return nil, errors.New("chaos: scheduled error")
		case 'h':
			<-release
			return nil, ctx.Err()
		case 'd':
			d := buildData(epoch)
			d.Degraded = true
			return produce(Assemble(d, Config{})), nil
		default:
			return produce(Assemble(buildData(epoch), Config{})), nil
		}
	}
	cfg.OnPublish = func(s *Snapshot) {
		mu.Lock()
		published++
		lastGood = s
		mu.Unlock()
	}

	st := NewStore(nil)
	sup := NewSupervisor(st, 1, cfg)
	srv := httptest.NewServer(NewHandler(st))
	defer srv.Close()

	// Clients hammer the server for the whole chaos run. Until the first
	// publish a 503 is the designed answer; after it, only consistent 200s.
	var stop atomic.Bool
	var served atomic.Int64
	fail := make(chan string, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			defer client.CloseIdleConnections()
			sawOK := false // once published, the store never empties again
			for !stop.Load() {
				resp, err := client.Get(srv.URL + "/v1/countries/AU")
				if err != nil {
					fail <- fmt.Sprintf("GET: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable && !sawOK {
					continue // pre-first-publish: correct refusal
				}
				if resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("status %d after serving began", resp.StatusCode)
					return
				}
				sawOK = true
				mu.Lock()
				want, ok := valid[resp.Header.Get("ETag")]
				mu.Unlock()
				if !ok || string(body) != want {
					fail <- "response does not match any published snapshot"
					return
				}
				served.Add(1)
			}
		}()
	}

	// March through the schedule until four snapshots have published. The
	// supervisor retries past panic/error/hang steps on its own; a degraded
	// step is *rejected* (not retried), so each trigger resolves as either
	// a new publish or a new rejection, and rejected rounds trigger again.
	publishes := func() int { mu.Lock(); defer mu.Unlock(); return published }
	for round := 0; publishes() < 4; round++ {
		if round > 20 {
			t.Fatalf("%d publishes after %d rounds", publishes(), round)
		}
		pubs, rejects := publishes(), mDegradedRejects.Value()
		sup.Trigger(fmt.Sprintf("chaos-%d", round))
		waitFor(t, 10*time.Second, "publish or degraded rejection", func() bool {
			return publishes() > pubs || mDegradedRejects.Value() > rejects
		})
	}

	stop.Store(true)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if served.Load() == 0 {
		t.Error("no responses served during chaos")
	}

	// The degraded step must not have displaced a healthy publish.
	if cur := st.Load(); cur.Degraded {
		t.Error("degraded snapshot displaced a healthy one")
	}

	// "kill -9": drop the supervisor without any graceful persist, then
	// warm-start a fresh store from disk like a new process would.
	sup.Close()
	mu.Lock()
	wantDigest := lastGood.Digest
	wantBody := string(lastGood.CountryBody("AU"))
	mu.Unlock()

	warm, skipped, err := persist.LoadLatest()
	if err != nil || warm == nil {
		t.Fatalf("warm start failed: %v (skipped %d)", err, skipped)
	}
	if warm.Digest != wantDigest {
		t.Errorf("warm-start digest %s != last published %s", shortDigest(warm.Digest), shortDigest(wantDigest))
	}
	if !warm.Stale {
		t.Error("warm-started snapshot not marked stale")
	}
	st2 := NewStore(warm)
	srv2 := httptest.NewServer(NewHandler(st2))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/v1/countries/AU")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != wantBody {
		t.Errorf("restarted server: status %d, body match %v — must serve last-good before any rebuild",
			resp.StatusCode, string(body) == wantBody)
	}
	t.Logf("%d consistent responses across %d published snapshots under chaos", served.Load(), published)
}
