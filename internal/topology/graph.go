// Package topology models the AS-level Internet: autonomous systems with
// registration countries and business classes, provider-customer and peering
// relationships, prefix origination, and a deterministic generator that
// builds a synthetic world mirroring the market structure of the countries
// the paper studies. The generator substitutes for the April 2021 / March
// 2023 RouteViews + RIS snapshots the paper consumed (see DESIGN.md).
package topology

import (
	"fmt"
	"net/netip"
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
)

// Class is the business role of an AS in the world model.
type Class uint8

const (
	// ClassTier1 ASes form the transit-free clique at the top of the
	// hierarchy.
	ClassTier1 Class = iota + 1
	// ClassTransit ASes sell transit below the clique (national incumbents'
	// international arms, regional carriers).
	ClassTransit
	// ClassAccess ASes are large national access/eyeball networks.
	ClassAccess
	// ClassContent ASes originate content and peer widely.
	ClassContent
	// ClassStub ASes are edge networks with providers and no customers.
	ClassStub
	// ClassRouteServer ASes are IXP route servers that appear transparently
	// in AS paths and must be removed during sanitization.
	ClassRouteServer
)

func (c Class) String() string {
	switch c {
	case ClassTier1:
		return "tier1"
	case ClassTransit:
		return "transit"
	case ClassAccess:
		return "access"
	case ClassContent:
		return "content"
	case ClassStub:
		return "stub"
	case ClassRouteServer:
		return "route-server"
	}
	return fmt.Sprintf("Class(%d)", c)
}

// AS describes one autonomous system.
type AS struct {
	ASN asn.ASN
	// Name is the operator name used in rendered tables.
	Name string
	// Registered is the country the ASN is registered in, which may differ
	// from where its prefixes geolocate (the paper's Amazon example).
	Registered countries.Code
	Class      Class
	// Prepend is how many extra copies of its own ASN the AS adds when
	// originating routes (traffic engineering); exercises path dedup.
	Prepend int
	// Users is the estimated user population served by the AS, the weight
	// IHR's user-weighted country hegemony variant uses (§1.2.1).
	Users int
}

// Rel is the business relationship between an ordered pair of ASes.
type Rel int8

const (
	// RelNone means no direct relationship.
	RelNone Rel = 0
	// RelP2C means the first AS is a provider of the second.
	RelP2C Rel = 1
	// RelC2P means the first AS is a customer of the second.
	RelC2P Rel = -1
	// RelP2P means the ASes peer.
	RelP2P Rel = 2
)

func (r Rel) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelP2C:
		return "p2c"
	case RelC2P:
		return "c2p"
	case RelP2P:
		return "p2p"
	}
	return fmt.Sprintf("Rel(%d)", r)
}

// Graph is the AS-level topology with ground-truth relationships and prefix
// origination. Node indexes are dense ints assigned in AddAS order; the
// routing simulator works in index space for speed.
type Graph struct {
	nodes []AS
	idx   map[asn.ASN]int32

	providers [][]int32 // providers[i]: nodes that sell transit to i
	customers [][]int32 // customers[i]: nodes that buy transit from i
	peers     [][]int32

	// viaRS maps an undirected peering edge to the route server ASN the
	// session runs through (0 when the peering is direct).
	viaRS map[[2]int32]asn.ASN

	origins [][]netip.Prefix

	// asnCache backs ASNs(); rebuilt whenever the node count changes.
	asnCache []asn.ASN
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{idx: make(map[asn.ASN]int32), viaRS: make(map[[2]int32]asn.ASN)}
}

// AddAS adds a node; duplicate ASNs are an error.
func (g *Graph) AddAS(a AS) error {
	if _, dup := g.idx[a.ASN]; dup {
		return fmt.Errorf("topology: duplicate %v", a.ASN)
	}
	g.idx[a.ASN] = int32(len(g.nodes))
	g.nodes = append(g.nodes, a)
	g.providers = append(g.providers, nil)
	g.customers = append(g.customers, nil)
	g.peers = append(g.peers, nil)
	g.origins = append(g.origins, nil)
	return nil
}

// MustAddAS adds a node and panics on duplicates; for generator use.
func (g *Graph) MustAddAS(a AS) {
	if err := g.AddAS(a); err != nil {
		panic(err)
	}
}

// NumASes returns the node count.
func (g *Graph) NumASes() int { return len(g.nodes) }

// ASNs returns a node-index-ordered ASN slice, built lazily and cached.
// Hot paths in the routing simulator use it to avoid copying AS structs.
// The cache is invalidated by AddAS.
func (g *Graph) ASNs() []asn.ASN {
	if len(g.asnCache) != len(g.nodes) {
		g.asnCache = make([]asn.ASN, len(g.nodes))
		for i, n := range g.nodes {
			g.asnCache[i] = n.ASN
		}
	}
	return g.asnCache
}

// Node returns the AS at index i.
func (g *Graph) Node(i int32) AS { return g.nodes[i] }

// Index returns the node index of a.
func (g *Graph) Index(a asn.ASN) (int32, bool) {
	i, ok := g.idx[a]
	return i, ok
}

// ByASN returns the AS record for a.
func (g *Graph) ByASN(a asn.ASN) (AS, bool) {
	i, ok := g.idx[a]
	if !ok {
		return AS{}, false
	}
	return g.nodes[i], true
}

// AllASNs returns every ASN in ascending order.
func (g *Graph) AllASNs() []asn.ASN {
	out := make([]asn.ASN, 0, len(g.nodes))
	for a := range g.idx {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (g *Graph) mustIdx(a asn.ASN) int32 {
	i, ok := g.idx[a]
	if !ok {
		panic(fmt.Sprintf("topology: unknown %v", a))
	}
	return i
}

func edgeKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

func contains(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func remove(s []int32, x int32) []int32 {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// AddP2C records provider→customer. Adding an edge that already exists in
// any form is an error, as is a self edge.
func (g *Graph) AddP2C(provider, customer asn.ASN) error {
	p, c := g.mustIdx(provider), g.mustIdx(customer)
	if p == c {
		return fmt.Errorf("topology: self edge %v", provider)
	}
	if g.RelIdx(p, c) != RelNone {
		return fmt.Errorf("topology: edge %v-%v exists", provider, customer)
	}
	g.customers[p] = append(g.customers[p], c)
	g.providers[c] = append(g.providers[c], p)
	return nil
}

// AddP2P records a peering between a and b, optionally through IXP route
// server rs (0 for a direct session).
func (g *Graph) AddP2P(a, b asn.ASN, rs asn.ASN) error {
	ai, bi := g.mustIdx(a), g.mustIdx(b)
	if ai == bi {
		return fmt.Errorf("topology: self peering %v", a)
	}
	if g.RelIdx(ai, bi) != RelNone {
		return fmt.Errorf("topology: edge %v-%v exists", a, b)
	}
	g.peers[ai] = append(g.peers[ai], bi)
	g.peers[bi] = append(g.peers[bi], ai)
	if rs != 0 {
		g.viaRS[edgeKey(ai, bi)] = rs
	}
	return nil
}

// RemoveEdge deletes whatever relationship exists between a and b.
func (g *Graph) RemoveEdge(a, b asn.ASN) {
	ai, bi := g.mustIdx(a), g.mustIdx(b)
	g.customers[ai] = remove(g.customers[ai], bi)
	g.customers[bi] = remove(g.customers[bi], ai)
	g.providers[ai] = remove(g.providers[ai], bi)
	g.providers[bi] = remove(g.providers[bi], ai)
	g.peers[ai] = remove(g.peers[ai], bi)
	g.peers[bi] = remove(g.peers[bi], ai)
	delete(g.viaRS, edgeKey(ai, bi))
}

// Rel returns the ground-truth relationship from a's perspective.
func (g *Graph) Rel(a, b asn.ASN) Rel {
	ai, ok1 := g.idx[a]
	bi, ok2 := g.idx[b]
	if !ok1 || !ok2 {
		return RelNone
	}
	return g.RelIdx(ai, bi)
}

// RelIdx is Rel in node-index space.
func (g *Graph) RelIdx(a, b int32) Rel {
	switch {
	case contains(g.customers[a], b):
		return RelP2C
	case contains(g.providers[a], b):
		return RelC2P
	case contains(g.peers[a], b):
		return RelP2P
	}
	return RelNone
}

// ViaRS returns the route server ASN on the peering a-b, or 0.
func (g *Graph) ViaRS(a, b int32) asn.ASN { return g.viaRS[edgeKey(a, b)] }

// ProvidersIdx returns the provider node indexes of i (shared slice; do not
// mutate).
func (g *Graph) ProvidersIdx(i int32) []int32 { return g.providers[i] }

// CustomersIdx returns the customer node indexes of i.
func (g *Graph) CustomersIdx(i int32) []int32 { return g.customers[i] }

// PeersIdx returns the peer node indexes of i.
func (g *Graph) PeersIdx(i int32) []int32 { return g.peers[i] }

// Providers returns the providers of a as ASNs, sorted.
func (g *Graph) Providers(a asn.ASN) []asn.ASN { return g.asASNs(g.providers[g.mustIdx(a)]) }

// Customers returns the customers of a as ASNs, sorted.
func (g *Graph) Customers(a asn.ASN) []asn.ASN { return g.asASNs(g.customers[g.mustIdx(a)]) }

// Peers returns the peers of a as ASNs, sorted.
func (g *Graph) Peers(a asn.ASN) []asn.ASN { return g.asASNs(g.peers[g.mustIdx(a)]) }

func (g *Graph) asASNs(idxs []int32) []asn.ASN {
	out := make([]asn.ASN, len(idxs))
	for i, x := range idxs {
		out[i] = g.nodes[x].ASN
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Originate records that a announces p into BGP.
func (g *Graph) Originate(a asn.ASN, p netip.Prefix) {
	i := g.mustIdx(a)
	g.origins[i] = append(g.origins[i], p.Masked())
}

// OriginsIdx returns the prefixes originated by node i.
func (g *Graph) OriginsIdx(i int32) []netip.Prefix { return g.origins[i] }

// Origins returns the prefixes originated by a.
func (g *Graph) Origins(a asn.ASN) []netip.Prefix { return g.origins[g.mustIdx(a)] }

// NumEdges returns the count of relationship edges (p2c + p2p).
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.customers {
		n += len(g.customers[i])
		n += len(g.peers[i])
	}
	// peers slices double-count undirected edges.
	p := 0
	for i := range g.peers {
		p += len(g.peers[i])
	}
	return n - p/2
}

// Registry returns an ASN registry with every node's ASN allocated; route
// servers count as allocated (they are registered organizations).
func (g *Graph) Registry() *asn.Registry {
	r := asn.NewRegistry(nil)
	for _, n := range g.nodes {
		r.Allocate(n.ASN)
	}
	return r
}

// RouteServers returns the set of route-server ASNs.
func (g *Graph) RouteServers() map[asn.ASN]bool {
	out := map[asn.ASN]bool{}
	for _, n := range g.nodes {
		if n.Class == ClassRouteServer {
			out[n.ASN] = true
		}
	}
	return out
}

// Clone returns a deep copy, used to derive scenario snapshots.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		nodes: append([]AS(nil), g.nodes...),
		idx:   make(map[asn.ASN]int32, len(g.idx)),
		viaRS: make(map[[2]int32]asn.ASN, len(g.viaRS)),
	}
	for k, v := range g.idx {
		ng.idx[k] = v
	}
	for k, v := range g.viaRS {
		ng.viaRS[k] = v
	}
	cp := func(src [][]int32) [][]int32 {
		out := make([][]int32, len(src))
		for i, s := range src {
			out[i] = append([]int32(nil), s...)
		}
		return out
	}
	ng.providers = cp(g.providers)
	ng.customers = cp(g.customers)
	ng.peers = cp(g.peers)
	ng.origins = make([][]netip.Prefix, len(g.origins))
	for i, s := range g.origins {
		ng.origins[i] = append([]netip.Prefix(nil), s...)
	}
	return ng
}

// AllPrefixes returns every originated prefix with its origin, sorted
// canonically. Duplicate originations (MOAS) are preserved.
type PrefixOrigin struct {
	Prefix netip.Prefix
	Origin asn.ASN
}

// AllPrefixes returns every (prefix, origin) pair in canonical order.
func (g *Graph) AllPrefixes() []PrefixOrigin {
	var out []PrefixOrigin
	for i, ps := range g.origins {
		for _, p := range ps {
			out = append(out, PrefixOrigin{Prefix: p, Origin: g.nodes[i].ASN})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := comparePrefixOrigin(out[i], out[j]); c != 0 {
			return c < 0
		}
		return false
	})
	return out
}

func comparePrefixOrigin(a, b PrefixOrigin) int {
	if a.Prefix != b.Prefix {
		if a.Prefix.Addr() != b.Prefix.Addr() {
			return a.Prefix.Addr().Compare(b.Prefix.Addr())
		}
		return a.Prefix.Bits() - b.Prefix.Bits()
	}
	return int(a.Origin) - int(b.Origin)
}
