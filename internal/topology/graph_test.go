package topology

import (
	"testing"

	"countryrank/internal/netx"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, a := range []AS{
		{ASN: 1, Name: "One", Registered: "US", Class: ClassTier1},
		{ASN: 2, Name: "Two", Registered: "US", Class: ClassTransit},
		{ASN: 3, Name: "Three", Registered: "JP", Class: ClassStub},
		{ASN: 4, Name: "RS", Registered: "DE", Class: ClassRouteServer},
	} {
		g.MustAddAS(a)
	}
	return g
}

func TestAddASDuplicate(t *testing.T) {
	g := testGraph(t)
	if err := g.AddAS(AS{ASN: 1}); err == nil {
		t.Error("duplicate AddAS should fail")
	}
}

func TestEdgesAndRel(t *testing.T) {
	g := testGraph(t)
	if err := g.AddP2C(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddP2C(1, 2); err == nil {
		t.Error("duplicate edge should fail")
	}
	if err := g.AddP2C(2, 1); err == nil {
		t.Error("reverse duplicate edge should fail")
	}
	if err := g.AddP2C(1, 1); err == nil {
		t.Error("self edge should fail")
	}
	if err := g.AddP2P(2, 3, 4); err != nil {
		t.Fatal(err)
	}
	if g.Rel(1, 2) != RelP2C || g.Rel(2, 1) != RelC2P {
		t.Error("p2c relationship wrong")
	}
	if g.Rel(2, 3) != RelP2P || g.Rel(3, 2) != RelP2P {
		t.Error("p2p relationship wrong")
	}
	if g.Rel(1, 3) != RelNone || g.Rel(1, 99) != RelNone {
		t.Error("absent relationship wrong")
	}
	i2, _ := g.Index(2)
	i3, _ := g.Index(3)
	if g.ViaRS(i2, i3) != 4 || g.ViaRS(i3, i2) != 4 {
		t.Error("ViaRS should be symmetric")
	}
	if got := g.Customers(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("Customers(1) = %v", got)
	}
	if got := g.Providers(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Providers(2) = %v", got)
	}
	if got := g.Peers(3); len(got) != 1 || got[0] != 2 {
		t.Errorf("Peers(3) = %v", got)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := testGraph(t)
	g.AddP2C(1, 2)
	g.AddP2P(2, 3, 4)
	g.RemoveEdge(1, 2)
	g.RemoveEdge(3, 2)
	if g.Rel(1, 2) != RelNone || g.Rel(2, 3) != RelNone {
		t.Error("edges should be gone")
	}
	i2, _ := g.Index(2)
	i3, _ := g.Index(3)
	if g.ViaRS(i2, i3) != 0 {
		t.Error("RS mapping should be gone")
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := testGraph(t)
	g.AddP2C(1, 2)
	g.Originate(3, netx.MustPrefix("10.0.0.0/24"))
	c := g.Clone()
	c.RemoveEdge(1, 2)
	c.Originate(3, netx.MustPrefix("10.0.1.0/24"))
	if g.Rel(1, 2) != RelP2C {
		t.Error("clone mutation leaked into original")
	}
	if len(g.Origins(3)) != 1 || len(c.Origins(3)) != 2 {
		t.Error("origins aliased between clone and original")
	}
	if c.Rel(2, 1) != RelNone {
		t.Error("clone edge removal incomplete")
	}
}

func TestRegistryAndRouteServers(t *testing.T) {
	g := testGraph(t)
	r := g.Registry()
	if !r.Allocated(1) || !r.Allocated(4) {
		t.Error("graph ASNs should be allocated")
	}
	if r.Allocated(99) {
		t.Error("unknown ASN should be unallocated")
	}
	rs := g.RouteServers()
	if !rs[4] || rs[1] || len(rs) != 1 {
		t.Errorf("route servers = %v", rs)
	}
}

func TestAllPrefixesOrderAndOrigins(t *testing.T) {
	g := testGraph(t)
	g.Originate(3, netx.MustPrefix("11.0.0.0/8"))
	g.Originate(1, netx.MustPrefix("10.0.0.0/8"))
	g.Originate(1, netx.MustPrefix("10.0.0.0/16"))
	all := g.AllPrefixes()
	if len(all) != 3 {
		t.Fatalf("AllPrefixes = %v", all)
	}
	if all[0].Prefix != netx.MustPrefix("10.0.0.0/8") || all[0].Origin != 1 {
		t.Errorf("first = %+v", all[0])
	}
	if all[1].Prefix != netx.MustPrefix("10.0.0.0/16") {
		t.Errorf("second = %+v", all[1])
	}
	if all[2].Origin != 3 {
		t.Errorf("third = %+v", all[2])
	}
}

func TestClassAndRelStrings(t *testing.T) {
	for _, c := range []Class{ClassTier1, ClassTransit, ClassAccess, ClassContent, ClassStub, ClassRouteServer, Class(99)} {
		if c.String() == "" {
			t.Errorf("Class(%d) has empty string", c)
		}
	}
	for _, r := range []Rel{RelNone, RelP2C, RelC2P, RelP2P, Rel(9)} {
		if r.String() == "" {
			t.Errorf("Rel(%d) has empty string", r)
		}
	}
}
