package topology

import (
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/netx"
)

func TestIPv6WorldGeneration(t *testing.T) {
	cfg := smallCfg(Apr2021)
	cfg.IPv6 = true
	w := Build(cfg)

	var v6 int
	var tr netx.Trie[int]
	for _, po := range w.Graph.AllPrefixes() {
		p := po.Prefix
		if p.Addr().Is4() {
			continue
		}
		v6++
		// All v6 allocations live in the synthetic 2001::/16 space, sized
		// /44../48, CIDR-aligned.
		if p.Addr().As16()[0] != 0x20 || p.Addr().As16()[1] != 0x01 {
			t.Fatalf("v6 prefix outside pool space: %v", p)
		}
		if p.Bits() < 33 || p.Bits() > 48 {
			t.Fatalf("unexpected v6 size: %v", p)
		}
		if p != p.Masked() {
			t.Fatalf("unaligned v6 prefix: %v", p)
		}
		if _, dup := tr.Get(p); dup {
			t.Fatalf("duplicate v6 origination: %v", p)
		}
		tr.Insert(p, 1)
		// Geolocates to exactly one country via the /32 pool entry.
		if c, ok := w.Geo.CountryOf(p.Addr()); !ok || c == "" {
			t.Fatalf("v6 prefix %v has no geolocation", p)
		}
	}
	if v6 == 0 {
		t.Fatal("IPv6 world originated no v6 prefixes")
	}
	// v6 prefixes never nest (no covered-parent games in v6).
	for _, pv := range tr.All() {
		if len(tr.Descendants(pv.Prefix)) != 0 {
			t.Fatalf("nested v6 prefixes at %v", pv.Prefix)
		}
	}
}

func TestIPv6Deterministic(t *testing.T) {
	cfg := smallCfg(Apr2021)
	cfg.IPv6 = true
	a := Build(cfg)
	b := Build(cfg)
	ap, bp := a.Graph.AllPrefixes(), b.Graph.AllPrefixes()
	if len(ap) != len(bp) {
		t.Fatal("prefix counts differ")
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("prefix %d differs: %v vs %v", i, ap[i], bp[i])
		}
	}
}

func TestAnchorsGetLargerV6Blocks(t *testing.T) {
	cfg := smallCfg(Apr2021)
	cfg.IPv6 = true
	w := Build(cfg)
	shortest := func(a uint32) int {
		best := 129
		for _, p := range w.Graph.Origins(asn.ASN(a)) {
			if !p.Addr().Is4() && p.Bits() < best {
				best = p.Bits()
			}
		}
		return best
	}
	telstra := shortest(1221) // AddrShare 0.30 → /44
	if telstra != 44 {
		t.Errorf("Telstra v6 block = /%d, want /44", telstra)
	}
	// A generated stub (ASN ≥ 100000; anchor "stubs" like TW's Ministry of
	// Education carve by share) with v6 gets a /48.
	for _, a := range w.Graph.AllASNs() {
		n, _ := w.Graph.ByASN(a)
		if n.Class != ClassStub || a < 100000 {
			continue
		}
		for _, p := range w.Graph.Origins(a) {
			if !p.Addr().Is4() && p.Bits() != 48 {
				t.Fatalf("stub %v v6 block = %v", a, p)
			}
		}
	}
}
