package topology

import (
	"countryrank/internal/asn"
	"countryrank/internal/countries"
)

// The world model below is hand-curated to mirror the market structure the
// paper's case studies describe (§5, §6): each case-study country gets its
// real anchor ASes with the relationships that produce the paper's observed
// ranking shapes, and the remaining countries get generic ecosystems whose
// international upstreams follow the continental patterns of Table 12.

// anchorSpec declares one named AS in a country's market.
type anchorSpec struct {
	ASN   asn.ASN
	Name  string
	Class Class
	// Reg overrides the registration country (defaults to the profile's).
	Reg       countries.Code
	Providers []asn.ASN
	Peers     []asn.ASN
	Prepend   int
	// AddrShare is the fraction of the country pool this AS originates.
	AddrShare float64
	// CoveredPair additionally originates a /15 fully covered by its two /16
	// halves, exercising the covered-by-more-specifics filter.
	CoveredPair bool
	// ExtraOrigins originate address space in other countries' pools.
	ExtraOrigins []ExtraOrigin
}

// ExtraOrigin is foreign origination: prefixes carved from Country's pool.
type ExtraOrigin struct {
	Country countries.Code
	Share   float64
}

// WeightedAS weights a provider in the stub-homing lottery.
type WeightedAS struct {
	ASN    asn.ASN
	Weight float64
}

// profile describes one country's market.
type profile struct {
	Code          countries.Code
	Anchors       []anchorSpec
	StubProviders []WeightedAS
	Stubs         int
	VPs           int
	Slash8s       int
	// MultihomeProb is the chance a stub takes a second provider
	// (defaulted to 0.30 by the builder when zero).
	MultihomeProb float64
	// SplitFrac is the fraction of stub prefixes whose geolocation straddles
	// a border; SplitFailFrac of those fail the 50% threshold.
	SplitFrac     float64
	SplitFailFrac float64
	Neighbor      countries.Code
	Neighbor2     countries.Code
}

// clique returns the ground-truth transit-free clique.
func clique() []asn.ASN {
	return []asn.ASN{
		3356,  // Lumen
		1299,  // Arelion
		174,   // Cogent
		2914,  // NTT America
		3257,  // GTT
		6762,  // Telecom Italia Sparkle
		6453,  // TATA
		1273,  // Vodafone
		7018,  // AT&T
		701,   // Verizon
		1239,  // Sprint
		6461,  // Zayo
		3491,  // PCCW
		5511,  // Orange
		12956, // Telefonica
		3549,  // Lumen APL
	}
}

// routeServers lists IXP route-server ASes; they appear in peering paths and
// are removed during sanitization.
func routeServers() []AS {
	return []AS{
		{ASN: 6695, Name: "DE-CIX RS", Registered: "DE", Class: ClassRouteServer},
		{ASN: 1200, Name: "AMS-IX RS", Registered: "NL", Class: ClassRouteServer},
		{ASN: 8714, Name: "LINX RS", Registered: "GB", Class: ClassRouteServer},
	}
}

// routeServerFor returns the route server operating in country c, or 0.
func routeServerFor(c countries.Code) asn.ASN {
	switch c {
	case "DE":
		return 6695
	case "NL":
		return 1200
	case "GB":
		return 8714
	}
	return 0
}

// worldProfiles returns every country profile in deterministic build order.
// VP counts follow Table 4; stub counts set the relative AS-census order of
// the same table; Slash8s set relative address-space sizes.
func worldProfiles() []profile {
	ps := []profile{
		usProfile(), auProfile(), jpProfile(), ruProfile(), twProfile(),
		nlProfile(), gbProfile(), deProfile(), brProfile(), cnProfile(),
		// Generic countries, per-continent upstream templates. Countries that
		// are home to a clique member or named multinational get it added as
		// an extra anchor via withAnchor.
		withAnchor(generic("FR", 90, 35, 2, []asn.ASN{5511, 1299, 3356}, nil),
			anchorSpec{ASN: 5511, Name: "Orange", Class: ClassTier1, AddrShare: 0.05}),
		withAnchor(generic("IT", 80, 36, 2, []asn.ASN{6762, 1299, 174}, nil),
			anchorSpec{ASN: 6762, Name: "Telecom Italia Sparkle", Class: ClassTier1, AddrShare: 0.05}),
		withAnchor(generic("ES", 60, 14, 1, []asn.ASN{12956, 1299, 174}, nil),
			anchorSpec{ASN: 12956, Name: "Telefonica", Class: ClassTier1, AddrShare: 0.05}),
		withAnchor(generic("SE", 50, 21, 1, []asn.ASN{1299, 3356}, nil),
			anchorSpec{ASN: 1299, Name: "Arelion", Class: ClassTier1, AddrShare: 0.04}),
		generic("CH", 50, 45, 1, []asn.ASN{1299, 3356, 6762}, nil),
		generic("AT", 45, 41, 1, []asn.ASN{1299, 6762, 174}, nil),
		withAnchor(generic("SG", 40, 38, 1, []asn.ASN{7473, 3491, 2914}, []asn.ASN{6939}),
			anchorSpec{ASN: 7473, Name: "Singapore Telecom", Class: ClassTransit,
				Providers: []asn.ASN{3491, 1299}, AddrShare: 0.05}),
		withAnchor(generic("ZA", 45, 44, 1, []asn.ASN{16637, 30844, 3356}, nil),
			anchorSpec{ASN: 16637, Name: "MTN SA", Class: ClassTransit,
				Providers: []asn.ASN{3356, 1273}, AddrShare: 0.06}),
		generic("CA", 40, 4, 1, []asn.ASN{3356, 7018, 174}, nil),
		generic("MX", 30, 2, 1, []asn.ASN{3356, 174, 12956}, nil),
		generic("MQ", 12, 0, 1, []asn.ASN{5511, 3356}, nil),
		generic("AR", 35, 3, 1, []asn.ASN{12956, 3356, 6762}, nil),
		generic("CL", 25, 2, 1, []asn.ASN{12956, 3356}, nil),
		generic("CO", 25, 2, 1, []asn.ASN{12956, 174, 3356}, nil),
		generic("PE", 18, 0, 1, []asn.ASN{12956, 3356}, nil),
		generic("UA", 50, 4, 1, []asn.ASN{1299, 174, 5511, 9002}, nil),
		generic("LT", 18, 2, 1, []asn.ASN{1299, 1273, 9002}, nil),
		generic("HR", 15, 1, 1, []asn.ASN{6762, 1299}, nil),
		generic("GG", 12, 0, 1, []asn.ASN{1273, 1299}, nil),
		generic("IM", 12, 0, 1, []asn.ASN{1273, 3356}, nil),
		generic("KE", 20, 2, 1, []asn.ASN{30844, 16637, 6939}, nil),
		generic("UG", 12, 0, 1, []asn.ASN{30844, 16637}, nil),
		generic("MA", 15, 1, 1, []asn.ASN{5511, 6762}, nil),
		generic("CI", 10, 0, 1, []asn.ASN{5511}, nil),
		generic("TN", 10, 0, 1, []asn.ASN{6762, 5511}, nil),
		withAnchor(generic("MU", 8, 1, 1, []asn.ASN{37662, 30844}, nil),
			anchorSpec{ASN: 37662, Name: "WIOCC", Class: ClassTransit,
				Providers: []asn.ASN{1273, 6453}, AddrShare: 0.05}),
		generic("NA", 12, 0, 1, []asn.ASN{16637, 37662}, nil),
		generic("NG", 25, 1, 1, []asn.ASN{30844, 16637, 5511}, nil),
		generic("EG", 25, 1, 1, []asn.ASN{6762, 5511, 6453}, nil),
		generic("IN", 60, 4, 2, []asn.ASN{6453, 3491, 1299}, nil),
		generic("KR", 40, 2, 2, []asn.ASN{3491, 2914, 6939}, nil),
		withAnchor(generic("HK", 30, 4, 1, []asn.ASN{3491, 6453, 2914}, nil),
			anchorSpec{ASN: 3491, Name: "PCCW", Class: ClassTier1, AddrShare: 0.05}),
		generic("KZ", 25, 1, 1, []asn.ASN{12389, 20485, 1299}, nil),
		generic("KG", 10, 0, 1, []asn.ASN{12389, 20485}, nil),
		generic("TJ", 8, 0, 1, []asn.ASN{12389, 20485}, nil),
		generic("TM", 5, 0, 1, []asn.ASN{12389}, nil),
		generic("UZ", 12, 0, 1, []asn.ASN{12389, 20485, 1299}, nil),
		generic("AF", 8, 0, 1, []asn.ASN{6453, 12389}, nil),
		generic("NZ", 25, 3, 1, []asn.ASN{4637, 7473, 6939}, nil),
		generic("FJ", 5, 0, 1, []asn.ASN{4637, 7473}, nil),
		generic("PG", 5, 0, 1, []asn.ASN{4637}, nil),
	}
	return ps
}

// withAnchor appends extra anchors to a profile.
func withAnchor(p profile, anchors ...anchorSpec) profile {
	p.Anchors = append(p.Anchors, anchors...)
	return p
}

// generic builds a standard small-country profile: an incumbent with
// international and domestic ASes, two challengers, and stubs. Anchor ASNs
// are derived from a per-country base to stay collision-free.
func generic(code countries.Code, stubs, vps, slash8s int, upstreams []asn.ASN, extraPeers []asn.ASN) profile {
	base := genericBase(code)
	intl := base
	dom := base + 1
	ch1 := base + 2
	ch2 := base + 3
	intlProviders := upstreams
	if len(intlProviders) > 2 {
		intlProviders = intlProviders[:2]
	}
	ch1Prov := []asn.ASN{dom}
	ch2Prov := []asn.ASN{intl}
	if len(upstreams) > 1 {
		ch2Prov = append(ch2Prov, upstreams[1])
	}
	if len(upstreams) > 2 {
		ch1Prov = append(ch1Prov, upstreams[2])
	}
	anchors := []anchorSpec{
		{ASN: intl, Name: string(code) + " Intl", Class: ClassTransit, Providers: intlProviders, Peers: extraPeers, AddrShare: 0.05},
		{ASN: dom, Name: string(code) + " Telecom", Class: ClassAccess, Providers: []asn.ASN{intl}, AddrShare: 0.30},
		{ASN: ch1, Name: string(code) + " Net", Class: ClassAccess, Providers: ch1Prov, AddrShare: 0.12},
		{ASN: ch2, Name: string(code) + " Online", Class: ClassAccess, Providers: ch2Prov, Peers: []asn.ASN{dom}, AddrShare: 0.10},
	}
	return profile{
		Code:    code,
		Anchors: anchors,
		StubProviders: []WeightedAS{
			{dom, 0.45}, {ch1, 0.2}, {ch2, 0.15}, {intl, 0.1}, {upstreams[0], 0.1},
		},
		Stubs: stubs, VPs: vps, Slash8s: slash8s,
		SplitFrac: splitFracFor(code), SplitFailFrac: splitFailFor(code),
		Neighbor: neighborFor(code), Neighbor2: neighbor2For(code),
	}
}

// genericBase assigns each generic country a disjoint ASN block.
func genericBase(code countries.Code) asn.ASN {
	// Deterministic, readable bases well away from curated anchors and the
	// 100000+ stub range.
	bases := map[countries.Code]asn.ASN{
		"FR": 15557, "IT": 30722, "ES": 12479, "SE": 39651, "CH": 21040,
		"AT": 25255, "SG": 17645, "ZA": 36994, "CA": 21570, "MX": 28509,
		"MQ": 33392, "AR": 27747, "CL": 27651, "CO": 26611, "PE": 28970,
		"UA": 15895, "LT": 43811, "HR": 43940, "GG": 42689, "IM": 13666,
		"KE": 33771, "UG": 20294, "MA": 36903, "CI": 29571, "TN": 37693,
		"MU": 23889, "NA": 37105, "NG": 29465, "EG": 24835, "IN": 45609,
		"KR": 45996, "HK": 45102, "KZ": 29555, "KG": 47328, "TJ": 43197,
		"TM": 20661, "UZ": 28910, "AF": 38742, "NZ": 45177, "FJ": 45355,
		"PG": 45862, "NL": 50266, "GB": 52873, "DE": 51167, "BR": 52863,
	}
	b, ok := bases[code]
	if !ok {
		panic("topology: no generic base for " + string(code))
	}
	return b
}

func splitFracFor(code countries.Code) float64 {
	switch code {
	case "IM", "GG", "MQ", "NA": // Table 13's most-filtered countries
		return 0.9
	case "AF", "HR", "LT", "IN": // Table 14's most-filtered countries
		return 0.45
	case "CH", "AT", "LU":
		return 0.1
	}
	return 0.04
}

func splitFailFor(code countries.Code) float64 {
	switch code {
	case "IM", "GG", "MQ", "NA":
		return 0.8
	case "AF", "HR", "LT", "IN":
		return 0.7
	}
	return 0.25
}

func neighborFor(code countries.Code) countries.Code {
	m := map[countries.Code]countries.Code{
		"IM": "GB", "GG": "GB", "MQ": "FR", "NA": "ZA", "AF": "TJ",
		"HR": "IT", "LT": "SE", "IN": "SG", "CH": "DE", "AT": "DE",
		"CA": "US", "MX": "US", "UA": "RU", "KZ": "RU",
	}
	if n, ok := m[code]; ok {
		return n
	}
	return "DE" // arbitrary but deterministic cross-border bleed
}

func neighbor2For(code countries.Code) countries.Code {
	m := map[countries.Code]countries.Code{
		"IM": "US", "GG": "FR", "MQ": "US", "NA": "GB", "AF": "IN",
		"HR": "DE", "LT": "GB", "IN": "HK",
	}
	if n, ok := m[code]; ok {
		return n
	}
	return "FR"
}

func usProfile() profile {
	return profile{
		Code: "US",
		Anchors: []anchorSpec{
			{ASN: 3356, Name: "Lumen", Class: ClassTier1, AddrShare: 0.10, CoveredPair: true},
			{ASN: 7018, Name: "AT&T", Class: ClassTier1, AddrShare: 0.14},
			{ASN: 701, Name: "Verizon", Class: ClassTier1, AddrShare: 0.12},
			{ASN: 174, Name: "Cogent", Class: ClassTier1, AddrShare: 0.03},
			{ASN: 1239, Name: "Sprint", Class: ClassTier1, AddrShare: 0.03},
			{ASN: 6461, Name: "Zayo", Class: ClassTier1, AddrShare: 0.02},
			{ASN: 3257, Name: "GTT", Class: ClassTier1, AddrShare: 0.02},
			{ASN: 2914, Name: "NTT America", Class: ClassTier1, AddrShare: 0.02},
			{ASN: 3549, Name: "Lumen APL", Class: ClassTier1, Providers: []asn.ASN{3356}, AddrShare: 0.02},
			{ASN: 6453, Name: "TATA America", Class: ClassTier1, AddrShare: 0.01},
			// Hurricane: outside the clique, peers with everyone (added in
			// Build), carries a real customer base.
			{ASN: 6939, Name: "Hurricane", Class: ClassTransit,
				Peers:     []asn.ASN{3356, 1299, 174, 2914, 3257, 6762, 6453, 1273, 7018, 701, 1239, 6461, 3491, 5511, 12956, 3549},
				AddrShare: 0.02},
			{ASN: 16509, Name: "Amazon", Class: ClassContent,
				Providers: []asn.ASN{3356, 174},
				Peers:     []asn.ASN{6939, 7018, 701},
				AddrShare: 0.05,
				ExtraOrigins: []ExtraOrigin{
					{Country: "AU", Share: 0.05},
					{Country: "DE", Share: 0.03},
					{Country: "JP", Share: 0.02},
				}},
			{ASN: 20940, Name: "Akamai", Class: ClassContent, Reg: "NL",
				Providers: []asn.ASN{1299, 3356},
				Peers:     []asn.ASN{6939, 2914},
				AddrShare: 0.01},
			{ASN: 9002, Name: "RETN", Class: ClassTransit, Reg: "EU",
				Providers: []asn.ASN{1299, 1273},
				AddrShare: 0.005},
		},
		StubProviders: []WeightedAS{
			{3356, 0.18}, {7018, 0.16}, {701, 0.12}, {174, 0.10},
			{6939, 0.22}, {1239, 0.06}, {6461, 0.06}, {3257, 0.05}, {2914, 0.05},
		},
		Stubs: 300, VPs: 101, Slash8s: 12, MultihomeProb: 0.55,
		SplitFrac: 0.01, SplitFailFrac: 0.1, Neighbor: "CA", Neighbor2: "MX",
	}
}

func auProfile() profile {
	return profile{
		Code: "AU",
		Anchors: []anchorSpec{
			// Telstra's international arm: the paper's archetype of the
			// incumbent running separate international and domestic ASes.
			{ASN: 4637, Name: "Telstra Global", Class: ClassTransit,
				Providers: []asn.ASN{3356, 1299},
				Peers:     []asn.ASN{2914, 3257, 7473, 3491}},
			{ASN: 1221, Name: "Telstra", Class: ClassAccess,
				Providers: []asn.ASN{4637, 4826}, // dual-homed: Telstra Global + Vocus
				Peers:     []asn.ASN{6939},       // domestic+HE peering keeps national paths off 4637
				AddrShare: 0.30},
			{ASN: 4826, Name: "Vocus", Class: ClassTransit,
				Providers: []asn.ASN{1299, 6461},
				Peers:     []asn.ASN{7545},
				AddrShare: 0.06},
			{ASN: 7545, Name: "TPG", Class: ClassAccess,
				Providers: []asn.ASN{4826},
				Peers:     []asn.ASN{1221},
				AddrShare: 0.12},
			{ASN: 7474, Name: "SingTel Optus", Class: ClassAccess,
				Providers: []asn.ASN{7473, 4804},
				Peers:     []asn.ASN{1221, 4826, 7545},
				AddrShare: 0.13},
			{ASN: 4804, Name: "SingTel Optus Intl", Class: ClassTransit,
				Providers: []asn.ASN{7473, 3356},
				Peers:     []asn.ASN{1221, 4826}},
		},
		// Telstra Global (4637) sells international wholesale, not domestic
		// edge transit: no stub homes on it, keeping AHN(4637) ≈ 0 (§5.1).
		StubProviders: []WeightedAS{
			{1221, 0.44}, {4826, 0.22}, {7474, 0.14}, {7545, 0.12}, {6939, 0.08},
		},
		Stubs: 70, VPs: 25, Slash8s: 2,
		SplitFrac: 0.02, SplitFailFrac: 0.1, Neighbor: "NZ",
	}
}

func jpProfile() profile {
	return profile{
		Code: "JP",
		Anchors: []anchorSpec{
			// NTT OCN: the domestic arm; NTT America (2914) is its only
			// provider, mirroring the Verio acquisition history (§5.2).
			{ASN: 4713, Name: "NTT OCN", Class: ClassAccess,
				Providers: []asn.ASN{2914},
				AddrShare: 0.16},
			{ASN: 2516, Name: "KDDI", Class: ClassAccess,
				Providers: []asn.ASN{2914, 3257},
				Peers:     []asn.ASN{4713},
				AddrShare: 0.18},
			{ASN: 17676, Name: "SoftBank", Class: ClassAccess,
				Providers: []asn.ASN{2914, 3257},
				Peers:     []asn.ASN{4713, 2516},
				AddrShare: 0.17},
			{ASN: 2497, Name: "IIJ", Class: ClassTransit,
				Providers: []asn.ASN{2914, 1299},
				Peers:     []asn.ASN{2516, 17676},
				AddrShare: 0.05},
		},
		StubProviders: []WeightedAS{
			{4713, 0.30}, {2516, 0.25}, {17676, 0.20}, {2497, 0.15}, {2914, 0.10},
		},
		Stubs: 70, VPs: 7, Slash8s: 4,
		SplitFrac: 0.05, SplitFailFrac: 0.3, Neighbor: "KR", Neighbor2: "HK",
	}
}

func ruProfile() profile {
	return profile{
		Code: "RU",
		Anchors: []anchorSpec{
			// Rostelecom: the state incumbent; buys international transit
			// from Western multinationals, which is the dependence §6.1
			// finds intact after the invasion.
			{ASN: 12389, Name: "Rostelecom", Class: ClassAccess,
				Providers: []asn.ASN{3356, 1299, 174},
				AddrShare: 0.22},
			{ASN: 20485, Name: "TransTelecom", Class: ClassTransit,
				Providers: []asn.ASN{1273, 3356},
				AddrShare: 0.04},
			{ASN: 9049, Name: "ER-Telecom", Class: ClassAccess,
				Providers: []asn.ASN{12389, 1299},
				AddrShare: 0.13},
			{ASN: 8359, Name: "MTS PJSC", Class: ClassAccess,
				Providers: []asn.ASN{20485, 1273, 3257},
				AddrShare: 0.12},
			{ASN: 3216, Name: "Vimpelcom", Class: ClassAccess,
				Providers: []asn.ASN{3356, 1273, 3257},
				AddrShare: 0.10},
			{ASN: 31133, Name: "MegaFon", Class: ClassAccess,
				Providers: []asn.ASN{20485, 9002},
				AddrShare: 0.08},
			{ASN: 8402, Name: "Vimpelcom Broadband", Class: ClassAccess,
				Providers: []asn.ASN{3216, 12389},
				AddrShare: 0.06},
		},
		// Russian ISPs historically do not peer domestically much; stubs home
		// on the national carriers, whose own transit is foreign. That makes
		// even domestic paths climb through multinationals, reproducing the
		// high CCN of Vodafone/TransTelecom in Table 7.
		StubProviders: []WeightedAS{
			{12389, 0.30}, {9049, 0.15}, {8359, 0.15}, {3216, 0.12},
			{31133, 0.10}, {20485, 0.10}, {8402, 0.08},
		},
		Stubs: 140, VPs: 18, Slash8s: 2,
		SplitFrac: 0.03, SplitFailFrac: 0.2, Neighbor: "KZ", Neighbor2: "UA",
	}
}

func twProfile() profile {
	return profile{
		Code: "TW",
		Anchors: []anchorSpec{
			{ASN: 9505, Name: "Chunghwa Intl", Class: ClassTransit,
				Providers: []asn.ASN{3356, 1299, 174}},
			{ASN: 3462, Name: "Chunghwa HiNet", Class: ClassAccess,
				Providers: []asn.ASN{9505},
				AddrShare: 0.33},
			{ASN: 9680, Name: "Data Comm", Class: ClassAccess,
				Providers: []asn.ASN{3462, 9505},
				AddrShare: 0.12},
			{ASN: 4780, Name: "Digital United", Class: ClassTransit,
				// In 2021 China Telecom still provided transit (removed in
				// the 2023 scenario, dropping 4134 from TW's CCI top 10).
				Providers: []asn.ASN{3356, 9505, 4134},
				AddrShare: 0.10},
			{ASN: 1659, Name: "TANet", Class: ClassAccess,
				Providers: []asn.ASN{4780, 9505},
				AddrShare: 0.09},
			{ASN: 17717, Name: "Ministry of Education", Class: ClassStub,
				Providers: []asn.ASN{1659, 3462},
				AddrShare: 0.05},
			{ASN: 9924, Name: "Taiwan Fixed", Class: ClassAccess,
				Providers: []asn.ASN{4780, 3257},
				AddrShare: 0.09},
			{ASN: 9674, Name: "Far EasTone", Class: ClassAccess,
				Providers: []asn.ASN{9680, 9505},
				AddrShare: 0.07},
		},
		StubProviders: []WeightedAS{
			{3462, 0.40}, {9680, 0.16}, {4780, 0.14}, {9924, 0.12}, {9674, 0.10}, {1659, 0.08},
		},
		Stubs: 35, VPs: 3, Slash8s: 1,
		SplitFrac: 0.02, SplitFailFrac: 0.2, Neighbor: "HK",
	}
}

func cnProfile() profile {
	return profile{
		Code: "CN",
		Anchors: []anchorSpec{
			{ASN: 4134, Name: "China Telecom", Class: ClassTransit,
				Providers: []asn.ASN{3356, 1299, 3491},
				AddrShare: 0.35},
			{ASN: 4837, Name: "China Unicom", Class: ClassAccess,
				Providers: []asn.ASN{4134, 3491},
				AddrShare: 0.25},
			{ASN: 58453, Name: "China Mobile Intl", Class: ClassTransit,
				Providers: []asn.ASN{3491, 6453},
				AddrShare: 0.15},
		},
		StubProviders: []WeightedAS{{4134, 0.5}, {4837, 0.3}, {58453, 0.2}},
		Stubs:         80, VPs: 0, Slash8s: 4,
		SplitFrac: 0.01, SplitFailFrac: 0.2, Neighbor: "HK",
	}
}

func nlProfile() profile {
	p := generic("NL", 150, 141, 2, []asn.ASN{1299, 3356, 1273}, nil)
	p.Anchors = append(p.Anchors, anchorSpec{
		ASN: 1136, Name: "KPN", Class: ClassAccess,
		Providers: []asn.ASN{1299, 3356},
		AddrShare: 0.15,
	})
	p.StubProviders = append(p.StubProviders, WeightedAS{1136, 0.3})
	return p
}

func gbProfile() profile {
	p := generic("GB", 120, 105, 2, []asn.ASN{1273, 1299, 3356}, nil)
	p.Anchors = append(p.Anchors,
		anchorSpec{ASN: 1273, Name: "Vodafone", Class: ClassTier1, AddrShare: 0.03},
		anchorSpec{ASN: 2856, Name: "BT", Class: ClassAccess,
			Providers: []asn.ASN{1273, 1299}, AddrShare: 0.15},
		anchorSpec{ASN: 30844, Name: "Liquid Telecom", Class: ClassTransit,
			Providers: []asn.ASN{1273, 3356}, AddrShare: 0.01},
	)
	p.StubProviders = append(p.StubProviders, WeightedAS{2856, 0.3})
	return p
}

func deProfile() profile {
	p := generic("DE", 120, 73, 3, []asn.ASN{1299, 3356, 174}, nil)
	p.Anchors = append(p.Anchors, anchorSpec{
		ASN: 3320, Name: "Deutsche Telekom", Class: ClassAccess,
		Providers: []asn.ASN{1299, 3356},
		AddrShare: 0.20,
	})
	p.StubProviders = append(p.StubProviders, WeightedAS{3320, 0.35})
	return p
}

func brProfile() profile {
	p := generic("BR", 180, 46, 3, []asn.ASN{3356, 12956, 6762}, nil)
	p.Anchors = append(p.Anchors, anchorSpec{
		ASN: 4230, Name: "Claro Embratel", Class: ClassAccess,
		Providers: []asn.ASN{3356, 12956},
		AddrShare: 0.18,
	})
	p.StubProviders = append(p.StubProviders, WeightedAS{4230, 0.3})
	return p
}

// applyMar2023 mutates the 2021 world into the March 2023 scenario:
//   - Taiwan: China Telecom's transit into Taiwan is gone (§6.2).
//   - Russia: GTT withdraws from the Russian market; Orange and Cogent pick
//     up the affected customers; domestic churn shifts hegemony mildly, but
//     the foreign-transit dependence remains (§6.1, Table 10).
func applyMar2023(g *Graph) {
	// Taiwan de-peering from China Telecom.
	g.RemoveEdge(4134, 4780)

	// GTT leaves Russia: MTS and Vimpelcom rehome to Orange and Cogent.
	g.RemoveEdge(3257, 8359)
	g.RemoveEdge(3257, 3216)
	mustP2C(g, 5511, 8359)
	mustP2C(g, 174, 3216)
	// Cogent also gains TransTelecom, raising its Russian cone (Table 10's
	// CCI jump for AS 174).
	mustP2C(g, 174, 20485)
	// MegaFon grows: picks up Arelion transit directly.
	mustP2C(g, 1299, 31133)
}

func mustP2C(g *Graph, provider, customer asn.ASN) {
	if g.Rel(provider, customer) != RelNone {
		return
	}
	if err := g.AddP2C(provider, customer); err != nil {
		panic(err)
	}
}
