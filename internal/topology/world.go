package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
	"countryrank/internal/geoloc"
	"countryrank/internal/netx"
	"countryrank/internal/vp"
)

// Scenario selects the snapshot date the generator models. The 2023 scenario
// applies the geopolitical rewirings of §6 (Russia sanctions, Taiwan/China
// de-peering) on top of the 2021 base world.
type Scenario string

// Scenarios corresponding to the paper's two measurement dates.
const (
	Apr2021 Scenario = "20210401"
	Mar2023 Scenario = "20230301"
)

// Config parameterizes world generation. The zero value is completed by
// Build: seed 1, scenario Apr2021, scales 1.0.
type Config struct {
	Seed     int64
	Scenario Scenario
	// StubScale multiplies per-country stub AS counts (tests use < 1).
	StubScale float64
	// VPScale multiplies per-country VP counts.
	VPScale float64
	// IPv6 additionally originates IPv6 prefixes (dual stack). Off by
	// default so the paper-calibrated IPv4 experiments stay untouched.
	IPv6 bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scenario == "" {
		c.Scenario = Apr2021
	}
	if c.StubScale == 0 {
		c.StubScale = 1
	}
	if c.VPScale == 0 {
		c.VPScale = 1
	}
	return c
}

// World is a complete synthetic measurement environment: the AS graph with
// ground truth, the vantage points, and the address geolocation database.
type World struct {
	Config Config
	Graph  *Graph
	VPs    *vp.Set
	Geo    *geoloc.DB
	// Clique is the ground-truth transit-free clique.
	Clique []asn.ASN
}

// pool carves prefixes out of a country's address allocation using first-fit
// across its /8s to limit alignment waste.
type pool struct {
	bases []uint32 // /8 network addresses
	offs  []uint32 // next free offset within each /8
}

func (p *pool) carve(bits int) (netip.Prefix, bool) {
	size := uint32(1) << (32 - bits)
	for i := range p.bases {
		// Align offset up to the prefix size.
		off := (p.offs[i] + size - 1) &^ (size - 1)
		if off+size <= 1<<24 && off+size > off {
			p.offs[i] = off + size
			base := p.bases[i] + off
			return netip.PrefixFrom(netip.AddrFrom4([4]byte{
				byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base),
			}), bits), true
		}
	}
	return netip.Prefix{}, false
}

// pool6 carves IPv6 prefixes from a country's /32, first-fit in units of
// the requested size within the 2001:xxxx::/32 synthetic allocation.
type pool6 struct {
	base [4]byte // first 4 address bytes (the /32)
	off  uint32  // next free offset in /64 units... tracked in /48 granules
}

// carve6 allocates an aligned prefix of the given length (33..48 supported).
func (p *pool6) carve(bits int) (netip.Prefix, bool) {
	if bits < 33 {
		bits = 33
	}
	if bits > 48 {
		bits = 48
	}
	size := uint32(1) << (48 - bits) // in /48 units
	off := (p.off + size - 1) &^ (size - 1)
	if off+size > 1<<16 || off+size < off {
		return netip.Prefix{}, false
	}
	p.off = off + size
	var a [16]byte
	copy(a[:4], p.base[:])
	a[4] = byte(off >> 8)
	a[5] = byte(off)
	return netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked(), true
}

type builder struct {
	cfg      Config
	rng      *rand.Rand
	g        *Graph
	geo      *geoloc.DB
	pools    map[countries.Code]*pool
	pools6   map[countries.Code]*pool6
	next6    uint16 // next v6 /32 index
	nextStub asn.ASN
	nextOct  byte // next /8 first octet to hand out

	collectors []vp.Collector
	vps        []vp.VP

	// stubsByCountry records generated stub ASNs for VP placement.
	stubsByCountry map[countries.Code][]asn.ASN
}

// Build generates the world for cfg. Identical configs produce identical
// worlds.
func Build(cfg Config) *World {
	cfg = cfg.withDefaults()
	b := &builder{
		cfg:            cfg,
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		g:              NewGraph(),
		geo:            &geoloc.DB{},
		pools:          map[countries.Code]*pool{},
		pools6:         map[countries.Code]*pool6{},
		next6:          1,
		nextStub:       100000,
		nextOct:        1,
		stubsByCountry: map[countries.Code][]asn.ASN{},
	}

	profiles := worldProfiles()

	// Pass 1: address pools and geolocation base entries.
	for _, p := range profiles {
		b.allocPool(p.Code, p.Slash8s)
	}

	// Pass 2: create all anchor ASes (edges need both endpoints to exist).
	for _, rs := range routeServers() {
		b.g.MustAddAS(rs)
	}
	for _, p := range profiles {
		for _, a := range p.Anchors {
			reg := a.Reg
			if reg == "" {
				reg = p.Code
			}
			b.g.MustAddAS(AS{
				ASN: a.ASN, Name: a.Name, Registered: reg, Class: a.Class,
				Prepend: a.Prepend, Users: usersFor(a.Class, a.AddrShare),
			})
		}
	}

	// Pass 3: clique full mesh, then anchor provider/peer edges.
	cl := clique()
	for i := 0; i < len(cl); i++ {
		for j := i + 1; j < len(cl); j++ {
			b.addPeerOnce(cl[i], cl[j], 0)
		}
	}
	for _, p := range profiles {
		rs := routeServerFor(p.Code)
		for _, a := range p.Anchors {
			for _, prov := range a.Providers {
				b.addP2COnce(prov, a.ASN)
			}
			for _, peer := range a.Peers {
				// Domestic peerings in route-server countries run through
				// the IXP route server, leaking its ASN into paths.
				edgeRS := asn.ASN(0)
				if rs != 0 {
					if pa, ok := b.g.ByASN(peer); ok && pa.Registered == p.Code {
						edgeRS = rs
					}
				}
				b.addPeerOnce(a.ASN, peer, edgeRS)
			}
		}
	}

	// Hurricane Electric peers with every transit-class anchor it does not
	// already have a relationship with (its famously open peering policy).
	he := asn.ASN(6939)
	for _, p := range profiles {
		for _, a := range p.Anchors {
			if a.Class == ClassTransit && a.ASN != he {
				b.addPeerOnce(he, a.ASN, 0)
			}
		}
	}

	// Pass 4: stub ASes, per country.
	for _, p := range profiles {
		b.buildStubs(p)
	}

	// Pass 5: prefix origination and geolocation overrides. Anchors carve
	// first (their large allocations need alignment), then foreign
	// originations, then stubs fill the tail.
	for _, p := range profiles {
		b.originateAnchors(p)
	}
	for _, p := range profiles {
		b.originateExtras(p)
	}
	for _, p := range profiles {
		b.originateStubs(p)
	}
	if cfg.IPv6 {
		for _, p := range profiles {
			b.originateV6(p)
		}
	}

	// Pass 6: vantage points and collectors.
	b.placeVPs(profiles)

	// Pass 7: scenario mutations.
	if cfg.Scenario == Mar2023 {
		applyMar2023(b.g)
	}

	set, err := vp.NewSet(b.collectors, b.vps)
	if err != nil {
		panic(fmt.Sprintf("topology: vp set: %v", err))
	}
	return &World{Config: cfg, Graph: b.g, VPs: set, Geo: b.geo, Clique: cl}
}

func (b *builder) allocPool(c countries.Code, slash8s int) {
	if slash8s <= 0 {
		slash8s = 1
	}
	p := &pool{}
	for i := 0; i < slash8s; i++ {
		oct := b.nextOct
		b.nextOct++
		if b.nextOct == 10 { // skip RFC1918 10/8 for realism
			b.nextOct++
		}
		if b.nextOct >= 224 {
			panic("topology: out of /8 pools")
		}
		base := uint32(oct) << 24
		p.bases = append(p.bases, base)
		p.offs = append(p.offs, 0)
		b.geo.Add(netip.PrefixFrom(netip.AddrFrom4([4]byte{oct, 0, 0, 0}), 8), c)
	}
	b.pools[c] = p
	if b.cfg.IPv6 {
		idx := b.next6
		b.next6++
		p6 := &pool6{base: [4]byte{0x20, 0x01, byte(idx >> 8), byte(idx)}}
		b.pools6[c] = p6
		var a [16]byte
		copy(a[:4], p6.base[:])
		b.geo.Add(netip.PrefixFrom(netip.AddrFrom16(a), 32), c)
	}
}

func (b *builder) addP2COnce(provider, customer asn.ASN) {
	if b.g.Rel(provider, customer) != RelNone {
		return
	}
	if err := b.g.AddP2C(provider, customer); err != nil {
		panic(err)
	}
}

func (b *builder) addPeerOnce(a, c asn.ASN, rs asn.ASN) {
	if a == c || b.g.Rel(a, c) != RelNone {
		return
	}
	if err := b.g.AddP2P(a, c, rs); err != nil {
		panic(err)
	}
}

// buildStubs creates the country's stub edge networks and homes them on the
// profile's weighted providers.
func (b *builder) buildStubs(p profile) {
	n := int(float64(p.Stubs)*b.cfg.StubScale + 0.5)
	if n < 2 {
		n = 2
	}
	var totalW float64
	for _, w := range p.StubProviders {
		totalW += w.Weight
	}
	pick := func() asn.ASN {
		r := b.rng.Float64() * totalW
		for _, w := range p.StubProviders {
			r -= w.Weight
			if r <= 0 {
				return w.ASN
			}
		}
		return p.StubProviders[len(p.StubProviders)-1].ASN
	}
	rsASN := routeServerFor(p.Code)
	var created []asn.ASN
	for i := 0; i < n; i++ {
		a := b.nextStub
		b.nextStub++
		b.g.MustAddAS(AS{
			ASN:        a,
			Name:       fmt.Sprintf("%s-Edge-%d", p.Code, i+1),
			Registered: p.Code,
			Class:      ClassStub,
			Prepend:    pickPrepend(b.rng),
			Users:      1000 + b.rng.Intn(50000),
		})
		p1 := pick()
		b.addP2COnce(p1, a)
		mh := p.MultihomeProb
		if mh == 0 {
			mh = 0.30
		}
		// Hurricane's bargain-transit customers are famously single-homed;
		// everyone else multihomes with the profile's probability.
		if p1 != 6939 && b.rng.Float64() < mh {
			p2 := pick()
			if p2 != p1 && p2 != 6939 {
				b.addP2COnce(p2, a)
			}
		}
		// Occasional stub-to-stub peering at the local IXP, sometimes through
		// the route server (exercises RS removal in the sanitizer).
		if len(created) > 0 && b.rng.Float64() < 0.08 {
			other := created[b.rng.Intn(len(created))]
			rs := asn.ASN(0)
			if rsASN != 0 && b.rng.Float64() < 0.5 {
				rs = rsASN
			}
			b.addPeerOnce(a, other, rs)
		}
		created = append(created, a)
	}
	b.stubsByCountry[p.Code] = created
}

// usersFor sizes an anchor's user base from its role: eyeball networks
// carry populations proportional to their address share, transit and
// content networks carry few direct users.
func usersFor(c Class, addrShare float64) int {
	switch c {
	case ClassAccess:
		return int(addrShare * 20e6)
	case ClassTier1:
		return 1_000_000
	case ClassTransit:
		return 100_000
	case ClassContent:
		return 10_000
	}
	return 5_000
}

func pickPrepend(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.85:
		return 0
	case r < 0.95:
		return 1
	default:
		return 2
	}
}

// originateAnchors carves the profile's anchor allocations.
func (b *builder) originateAnchors(p profile) {
	pl := b.pools[p.Code]
	poolSize := float64(len(pl.bases)) * float64(1<<24)
	for _, a := range p.Anchors {
		if a.AddrShare > 0 {
			// 0.85 fill factor absorbs alignment waste in the carver.
			b.carveShare(pl, a.ASN, a.AddrShare*poolSize*0.85)
		}
		if a.CoveredPair {
			// Originate a /15 plus both /16 halves: the /15 is entirely
			// covered by more specifics and must be filtered (§3.2.1).
			parent, ok := pl.carve(15)
			if !ok {
				continue
			}
			b.g.Originate(a.ASN, parent)
			lo, hi := netx.Halves(parent)
			b.g.Originate(a.ASN, lo)
			b.g.Originate(a.ASN, hi)
		}
	}
}

// originateV6 gives dual-stack allocations: anchors sized by share, and
// a majority of stubs a /48 each.
func (b *builder) originateV6(p profile) {
	pl6 := b.pools6[p.Code]
	if pl6 == nil {
		return
	}
	for _, a := range p.Anchors {
		if a.AddrShare <= 0 {
			continue
		}
		bits := 48
		switch {
		case a.AddrShare >= 0.15:
			bits = 44
		case a.AddrShare >= 0.05:
			bits = 46
		}
		if pfx, ok := pl6.carve(bits); ok {
			b.g.Originate(a.ASN, pfx)
		}
	}
	for _, s := range b.stubsByCountry[p.Code] {
		if b.rng.Float64() < 0.6 {
			if pfx, ok := pl6.carve(48); ok {
				b.g.Originate(s, pfx)
			}
		}
	}
}

// originateExtras carves anchors' foreign originations: the prefix
// geolocates in the foreign pool's country while the AS stays registered at
// home (the paper's Amazon-in-Australia case).
func (b *builder) originateExtras(p profile) {
	for _, a := range p.Anchors {
		for _, eo := range a.ExtraOrigins {
			fp := b.pools[eo.Country]
			if fp == nil {
				panic(fmt.Sprintf("topology: no pool for %s", eo.Country))
			}
			fpSize := float64(len(fp.bases)) * float64(1<<24)
			b.carveShare(fp, a.ASN, eo.Share*fpSize)
		}
	}
}

// originateStubs gives each stub one prefix from the pool's remaining share.
func (b *builder) originateStubs(p profile) {
	pl := b.pools[p.Code]
	poolSize := float64(len(pl.bases)) * float64(1<<24)
	var anchorShare float64
	for _, a := range p.Anchors {
		anchorShare += a.AddrShare
	}
	stubs := b.stubsByCountry[p.Code]
	if len(stubs) == 0 {
		return
	}
	remaining := (1 - anchorShare) * poolSize * 0.70 // leave headroom
	if remaining < 0 {
		remaining = float64(len(stubs)) * 256
	}
	per := remaining / float64(len(stubs))
	for _, s := range stubs {
		bits := bitsForTarget(per)
		if bits < 12 {
			bits = 12
		}
		if bits > 24 {
			bits = 24
		}
		pfx, ok := pl.carve(bits)
		if !ok {
			if pfx, ok = pl.carve(24); !ok {
				continue // pool full; stub stays prefix-less
			}
		}
		b.g.Originate(s, pfx)
		// Some stubs also announce both halves of their block (traffic
		// engineering de-aggregation), leaving the parent entirely covered
		// by more specifics: the dominant filter class of Figure 9.
		if pfx.Bits() <= 23 && b.rng.Float64() < 0.16 {
			lo, hi := netx.Halves(pfx)
			b.g.Originate(s, lo)
			b.g.Originate(s, hi)
		}
		// Geolocation stress: some stub prefixes straddle a border.
		if p.SplitFrac > 0 && b.rng.Float64() < p.SplitFrac && pfx.Bits() <= 23 {
			b.splitPrefixGeo(pfx, p)
		}
	}
}

// splitPrefixGeo overrides part of pfx's geolocation to the profile's
// neighbor. Most splits keep a home majority (pass the 50% threshold); a
// profile-controlled fraction fail it by splitting 50/25/25.
func (b *builder) splitPrefixGeo(pfx netip.Prefix, p profile) {
	neighbor := p.Neighbor
	if neighbor == "" {
		return
	}
	lo, hi := netx.Halves(pfx)
	if b.rng.Float64() < p.SplitFailFrac {
		// 50% home, 25% neighbor, 25% second neighbor: no country reaches
		// the 50% majority threshold, so the prefix is filtered.
		h1, h2 := netx.Halves(hi)
		b.geo.Add(h1, neighbor)
		second := p.Neighbor2
		if second == "" || second == neighbor {
			second = "FR"
			if neighbor == "FR" {
				second = "DE"
			}
		}
		b.geo.Add(h2, second)
		_ = lo // home keeps exactly half: not *above* the 50% threshold
	} else {
		// Passing splits vary the foreign share (1/8, 1/4 or 3/8 of the
		// prefix) so the Figure 8 threshold sweep declines gradually.
		h1, h2 := netx.Halves(hi)
		switch b.rng.Intn(3) {
		case 0: // 1/8 foreign
			if q, _ := netx.Halves(h1); q.Bits() <= 32 {
				b.geo.Add(q, neighbor)
			}
		case 1: // 1/4 foreign
			b.geo.Add(h1, neighbor)
		default: // 3/8 foreign
			b.geo.Add(h1, neighbor)
			if q, _ := netx.Halves(h2); q.Bits() <= 32 {
				b.geo.Add(q, neighbor)
			}
		}
	}
}

// carveShare originates prefixes for a totaling ~target addresses, split
// across up to 5 power-of-two prefixes.
func (b *builder) carveShare(pl *pool, a asn.ASN, target float64) {
	remaining := target
	for i := 0; i < 5 && remaining >= 256; i++ {
		bits := bitsForTarget(remaining)
		if bits < 9 {
			bits = 9 // nothing bigger than a /9 from a single carve
		}
		if bits > 24 {
			bits = 24
		}
		pfx, ok := pl.carve(bits)
		if !ok {
			// Pool exhausted by alignment waste: accept the shortfall.
			return
		}
		b.g.Originate(a, pfx)
		remaining -= float64(uint64(1) << (32 - bits))
	}
}

// bitsForTarget returns the prefix length whose size is the largest power of
// two not exceeding target (at least one address).
func bitsForTarget(target float64) int {
	bits := 32
	size := 1.0
	for bits > 0 && size*2 <= target {
		size *= 2
		bits--
	}
	return bits
}

// placeVPs creates collectors and vantage points per profile counts.
// Every country with VPs gets a local single-hop collector; a global share
// of VPs is rehomed onto multi-hop collectors, losing their geolocation.
func (b *builder) placeVPs(profiles []profile) {
	b.collectors = append(b.collectors,
		vp.Collector{Name: "mh-ams", ID: netip.AddrFrom4([4]byte{198, 51, 100, 1}), Country: "NL", MultiHop: true},
		vp.Collector{Name: "mh-iad", ID: netip.AddrFrom4([4]byte{198, 51, 100, 2}), Country: "US", MultiHop: true},
	)
	collID := byte(10)
	vpIdx := 0
	for _, p := range profiles {
		n := int(float64(p.VPs)*b.cfg.VPScale + 0.5)
		if p.VPs > 0 && n < 1 {
			n = 1
		}
		if n == 0 {
			continue
		}
		cname := "rc-" + string(p.Code)
		b.collectors = append(b.collectors, vp.Collector{
			Name:    cname,
			ID:      netip.AddrFrom4([4]byte{198, 51, collID, 0}),
			Country: p.Code,
		})
		collID++

		hosts := b.vpHostASes(p, n)
		for _, h := range hosts {
			coll := cname
			if b.rng.Float64() < 0.12 { // remote peer at a multi-hop collector
				coll = []string{"mh-ams", "mh-iad"}[b.rng.Intn(2)]
			}
			feed := vp.FullFeed
			if coll == cname && b.rng.Float64() < 0.25 {
				feed = vp.CustomerFeed
			}
			b.vps = append(b.vps, vp.VP{
				Index:     vpIdx,
				Addr:      netip.AddrFrom4([4]byte{100, byte(vpIdx >> 16), byte(vpIdx >> 8), byte(vpIdx)}),
				AS:        h,
				Collector: coll,
				Feed:      feed,
			})
			vpIdx++
		}
	}
}

// vpHostASes picks n host ASes in the country: anchors first (one VP each),
// then stubs, mostly one VP per AS (Figure 10's dispersion), with a small
// doubled-up tail.
func (b *builder) vpHostASes(p profile, n int) []asn.ASN {
	var hosts []asn.ASN
	for _, a := range p.Anchors {
		reg := a.Reg
		if reg == "" {
			reg = p.Code
		}
		if reg == p.Code && a.Class != ClassRouteServer {
			hosts = append(hosts, a.ASN)
		}
	}
	stubs := append([]asn.ASN(nil), b.stubsByCountry[p.Code]...)
	b.rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	hosts = append(hosts, stubs...)
	if len(hosts) == 0 {
		return nil
	}
	out := make([]asn.ASN, 0, n)
	used := 0
	for i := 0; i < n; i++ {
		// A minority of VPs share an AS with an earlier VP (Figure 10
		// reports ~81% of VPs alone in their AS).
		if used > 0 && (used >= len(hosts) || b.rng.Float64() < 0.10) {
			out = append(out, out[b.rng.Intn(len(out))])
			continue
		}
		out = append(out, hosts[used])
		used++
	}
	return out
}

// CountryOfPrefixTruth returns the ground-truth country of an originated
// prefix per the geolocation database's plurality, used by tests.
func (w *World) CountryOfPrefixTruth(p netip.Prefix) countries.Code {
	acc := map[countries.Code]uint64{}
	w.Geo.WeightByCountry(p, acc)
	var best countries.Code
	var bw uint64
	keys := make([]countries.Code, 0, len(acc))
	for c := range acc {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, c := range keys {
		if c != "" && acc[c] > bw {
			bw, best = acc[c], c
		}
	}
	return best
}
