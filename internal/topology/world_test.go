package topology

import (
	"testing"

	"countryrank/internal/asn"
	"countryrank/internal/netx"
)

// smallCfg keeps world-generation tests fast.
func smallCfg(scenario Scenario) Config {
	return Config{Seed: 3, Scenario: scenario, StubScale: 0.15, VPScale: 0.15}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(smallCfg(Apr2021))
	b := Build(smallCfg(Apr2021))
	if a.Graph.NumASes() != b.Graph.NumASes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("graph sizes differ: %d/%d vs %d/%d",
			a.Graph.NumASes(), a.Graph.NumEdges(), b.Graph.NumASes(), b.Graph.NumEdges())
	}
	if a.VPs.Len() != b.VPs.Len() {
		t.Fatalf("VP counts differ")
	}
	for i := 0; i < a.VPs.Len(); i++ {
		if a.VPs.VP(i) != b.VPs.VP(i) {
			t.Fatalf("VP %d differs", i)
		}
	}
	ap, bp := a.Graph.AllPrefixes(), b.Graph.AllPrefixes()
	if len(ap) != len(bp) {
		t.Fatalf("prefix counts differ")
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("prefix %d differs: %v vs %v", i, ap[i], bp[i])
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	a := Build(Config{Seed: 3, StubScale: 0.15, VPScale: 0.15})
	b := Build(Config{Seed: 4, StubScale: 0.15, VPScale: 0.15})
	// Structure (profiles) is fixed; the stochastic parts (stub homing)
	// should differ somewhere.
	same := true
	for _, s := range a.Graph.AllASNs() {
		pa := a.Graph.Providers(s)
		pb := b.Graph.Providers(s)
		if len(pa) != len(pb) {
			same = false
			break
		}
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
			}
		}
		if !same {
			break
		}
	}
	if same {
		t.Error("different seeds produced identical stub homing")
	}
}

func TestAnchorsPresent(t *testing.T) {
	w := Build(smallCfg(Apr2021))
	for _, a := range []uint32{3356, 1299, 174, 2914, 1221, 4637, 4826, 4713, 2516, 12389, 3462, 4134, 6939, 16509} {
		as, ok := w.Graph.ByASN(asn.ASN(a))
		if !ok {
			t.Errorf("anchor AS%d missing", a)
			continue
		}
		if as.Name == "" {
			t.Errorf("anchor AS%d unnamed", a)
		}
	}
	// Registration-vs-geolocation split: Amazon is US-registered.
	amzn, _ := w.Graph.ByASN(16509)
	if amzn.Registered != "US" {
		t.Errorf("Amazon registered = %v", amzn.Registered)
	}
}

func TestCliqueTransitFree(t *testing.T) {
	w := Build(smallCfg(Apr2021))
	for _, c := range w.Clique {
		if got := w.Graph.Providers(c); len(got) != 0 {
			t.Errorf("clique member %v has providers %v", c, got)
		}
	}
	// Full mesh.
	for i, a := range w.Clique {
		for _, b := range w.Clique[i+1:] {
			if w.Graph.Rel(a, b) != RelP2P {
				t.Errorf("clique %v-%v not peering", a, b)
			}
		}
	}
}

func TestPrefixesDisjointExceptCoveredPairs(t *testing.T) {
	w := Build(smallCfg(Apr2021))
	var trie netx.Trie[int]
	overlaps := 0
	for _, po := range w.Graph.AllPrefixes() {
		if _, dup := trie.Get(po.Prefix); dup {
			t.Errorf("duplicate origination of %v", po.Prefix)
		}
		trie.Insert(po.Prefix, 1)
	}
	total := 0
	for _, po := range w.Graph.AllPrefixes() {
		total++
		if len(trie.Descendants(po.Prefix)) > 0 {
			overlaps++
			// Every nesting parent must be *fully* covered (the deliberate
			// de-aggregation pattern), never partially overlapped.
			if !trie.CoveredByMoreSpecifics(po.Prefix) {
				t.Errorf("parent %v only partially covered", po.Prefix)
			}
		}
	}
	// The deliberate covered parents exist but stay a small minority.
	if overlaps == 0 || overlaps > total/10 {
		t.Errorf("nesting parents = %d of %d, want a small positive count", overlaps, total)
	}
}

func TestAmazonOriginatesAbroad(t *testing.T) {
	w := Build(smallCfg(Apr2021))
	foundAU := false
	for _, p := range w.Graph.Origins(16509) {
		if w.CountryOfPrefixTruth(p) == "AU" {
			foundAU = true
		}
	}
	if !foundAU {
		t.Error("Amazon should originate AU-geolocated prefixes")
	}
}

func TestScenarioMutations(t *testing.T) {
	w21 := Build(smallCfg(Apr2021))
	w23 := Build(smallCfg(Mar2023))
	if w21.Graph.Rel(4134, 4780) != RelP2C {
		t.Error("2021: China Telecom should provide transit to Digital United")
	}
	if w23.Graph.Rel(4134, 4780) != RelNone {
		t.Error("2023: China Telecom transit into Taiwan should be gone")
	}
	if w23.Graph.Rel(3257, 8359) != RelNone {
		t.Error("2023: GTT should have left Russia")
	}
	if w23.Graph.Rel(174, 20485) != RelP2C {
		t.Error("2023: Cogent should provide transit to TransTelecom")
	}
}

func TestVPCensusOrder(t *testing.T) {
	w := Build(Config{Seed: 1}) // full scale for census shape
	census := w.VPs.Census()
	if len(census) < 10 {
		t.Fatalf("census too small: %d", len(census))
	}
	// NL leads; GB and US fill the next two slots (their VP counts are a
	// coin flip apart once multi-hop exclusion randomizes), then DE.
	if census[0].Country != "NL" {
		t.Errorf("census[0] = %v, want NL", census[0].Country)
	}
	next := map[string]bool{string(census[1].Country): true, string(census[2].Country): true}
	if !next["GB"] || !next["US"] {
		t.Errorf("census[1:3] = %v, want {GB, US}", census[1:3])
	}
	if census[3].Country != "DE" {
		t.Errorf("census[3] = %v, want DE", census[3].Country)
	}
}

func TestGeoDBCoversAllPrefixes(t *testing.T) {
	w := Build(smallCfg(Apr2021))
	for _, po := range w.Graph.AllPrefixes() {
		if _, ok := w.Geo.CountryOf(po.Prefix.Addr()); !ok {
			t.Errorf("prefix %v has no geolocation", po.Prefix)
		}
	}
}
