// Package vp models BGP route collectors and their vantage points (VPs):
// the individual BGP peers that feed RouteViews- and RIS-style collectors.
// Geolocating VPs (§3.2.2 of the paper) uses the collector's published
// location, except for multi-hop collectors whose VPs may peer remotely and
// therefore cannot be geolocated; those VPs' paths are excluded.
package vp

import (
	"fmt"
	"net/netip"
	"sort"

	"countryrank/internal/asn"
	"countryrank/internal/countries"
)

// Collector is a route collector at a known location (usually an IXP).
type Collector struct {
	Name    string
	ID      netip.Addr // collector BGP identifier, IPv4
	Country countries.Code
	// MultiHop collectors accept remote (multi-hop eBGP) peers, so their
	// VPs' locations are unknown.
	MultiHop bool
}

// FeedType describes how much of its routing table a VP exports.
type FeedType uint8

const (
	// FullFeed VPs export their complete best-path table (most public VPs).
	FullFeed FeedType = iota
	// CustomerFeed VPs export only customer-learned routes, as a peer
	// applying normal peering export policy to the collector session would.
	CustomerFeed
)

// VP is one vantage point: a BGP peer of a collector.
type VP struct {
	// Index is the VP's position in its data set; stable within a world.
	Index int
	// Addr is the VP's peering address.
	Addr netip.Addr
	// AS is the network hosting the VP.
	AS asn.ASN
	// Collector names the collector this VP peers with.
	Collector string
	Feed      FeedType
}

// Set is an immutable collection of collectors and their VPs with the
// geolocation logic of §3.2.2 applied.
type Set struct {
	collectors map[string]Collector
	vps        []VP
}

// NewSet builds a Set, validating that every VP names a known collector and
// that VP indexes are dense and in order.
func NewSet(collectors []Collector, vps []VP) (*Set, error) {
	s := &Set{collectors: make(map[string]Collector, len(collectors))}
	for _, c := range collectors {
		if _, dup := s.collectors[c.Name]; dup {
			return nil, fmt.Errorf("vp: duplicate collector %q", c.Name)
		}
		s.collectors[c.Name] = c
	}
	for i, v := range vps {
		if _, ok := s.collectors[v.Collector]; !ok {
			return nil, fmt.Errorf("vp: VP %d references unknown collector %q", i, v.Collector)
		}
		if v.Index != i {
			return nil, fmt.Errorf("vp: VP at position %d has index %d", i, v.Index)
		}
	}
	s.vps = vps
	return s, nil
}

// Len returns the number of VPs.
func (s *Set) Len() int { return len(s.vps) }

// VP returns the VP at index i.
func (s *Set) VP(i int) VP { return s.vps[i] }

// VPs returns all VPs in index order.
func (s *Set) VPs() []VP { return s.vps }

// Collector returns the named collector.
func (s *Set) Collector(name string) (Collector, bool) {
	c, ok := s.collectors[name]
	return c, ok
}

// Collectors returns all collectors sorted by name.
func (s *Set) Collectors() []Collector {
	out := make([]Collector, 0, len(s.collectors))
	for _, c := range s.collectors {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Country geolocates VP i per §3.2.2: the collector's country, unless the
// collector is multi-hop, in which case the location is unknown and ok is
// false.
func (s *Set) Country(i int) (countries.Code, bool) {
	c := s.collectors[s.vps[i].Collector]
	if c.MultiHop {
		return "", false
	}
	return c.Country, true
}

// Located returns the indexes of VPs with a known country, and the count of
// VPs excluded because they peer with multi-hop collectors.
func (s *Set) Located() (located []int, excluded int) {
	for i := range s.vps {
		if _, ok := s.Country(i); ok {
			located = append(located, i)
		} else {
			excluded++
		}
	}
	return located, excluded
}

// InCountry returns the indexes of located VPs in country c.
func (s *Set) InCountry(c countries.Code) []int {
	var out []int
	for i := range s.vps {
		if got, ok := s.Country(i); ok && got == c {
			out = append(out, i)
		}
	}
	return out
}

// OutOfCountry returns the indexes of located VPs outside country c.
// Unlocatable (multi-hop) VPs are never included.
func (s *Set) OutOfCountry(c countries.Code) []int {
	var out []int
	for i := range s.vps {
		if got, ok := s.Country(i); ok && got != c {
			out = append(out, i)
		}
	}
	return out
}

// CountryCensus counts located VPs and their distinct ASes per country,
// the raw material for Table 4 and Figure 10.
type CountryCensus struct {
	Country countries.Code
	VPs     int
	VPASNs  int
}

// Census returns per-country VP counts sorted by descending VP count, then
// country code.
func (s *Set) Census() []CountryCensus {
	type acc struct {
		vps  int
		asns map[asn.ASN]bool
	}
	m := map[countries.Code]*acc{}
	for i, v := range s.vps {
		c, ok := s.Country(i)
		if !ok {
			continue
		}
		a := m[c]
		if a == nil {
			a = &acc{asns: map[asn.ASN]bool{}}
			m[c] = a
		}
		a.vps++
		a.asns[v.AS] = true
	}
	out := make([]CountryCensus, 0, len(m))
	for c, a := range m {
		out = append(out, CountryCensus{Country: c, VPs: a.vps, VPASNs: len(a.asns)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VPs != out[j].VPs {
			return out[i].VPs > out[j].VPs
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// ASConcentration returns, for located VPs in country c, how many VPs share
// an AS with k-1 other VPs: the Figure 10 distribution. The returned map is
// keyed by the number of VPs in the VP's AS.
func (s *Set) ASConcentration(c countries.Code) map[int]int {
	perAS := map[asn.ASN]int{}
	for i, v := range s.vps {
		if got, ok := s.Country(i); ok && got == c {
			perAS[v.AS]++
		}
	}
	out := map[int]int{}
	for _, n := range perAS {
		out[n] += n
	}
	return out
}
