package vp

import (
	"net/netip"
	"testing"
)

func testSet(t *testing.T) *Set {
	t.Helper()
	colls := []Collector{
		{Name: "rc-us", ID: netip.MustParseAddr("198.51.100.1"), Country: "US"},
		{Name: "rc-nl", ID: netip.MustParseAddr("198.51.100.2"), Country: "NL"},
		{Name: "mh", ID: netip.MustParseAddr("198.51.100.3"), Country: "NL", MultiHop: true},
	}
	vps := []VP{
		{Index: 0, Addr: netip.MustParseAddr("10.0.0.1"), AS: 3356, Collector: "rc-us"},
		{Index: 1, Addr: netip.MustParseAddr("10.0.0.2"), AS: 7018, Collector: "rc-us"},
		{Index: 2, Addr: netip.MustParseAddr("10.0.0.3"), AS: 3356, Collector: "rc-us"},
		{Index: 3, Addr: netip.MustParseAddr("10.0.0.4"), AS: 1136, Collector: "rc-nl"},
		{Index: 4, Addr: netip.MustParseAddr("10.0.0.5"), AS: 12389, Collector: "mh", Feed: CustomerFeed},
	}
	s, err := NewSet(colls, vps)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return s
}

func TestNewSetValidation(t *testing.T) {
	c := []Collector{{Name: "a", ID: netip.MustParseAddr("1.1.1.1"), Country: "US"}}
	if _, err := NewSet(append(c, c[0]), nil); err == nil {
		t.Error("duplicate collector should fail")
	}
	if _, err := NewSet(c, []VP{{Index: 0, Collector: "nope"}}); err == nil {
		t.Error("unknown collector reference should fail")
	}
	if _, err := NewSet(c, []VP{{Index: 5, Collector: "a"}}); err == nil {
		t.Error("sparse index should fail")
	}
}

func TestCountryAndLocated(t *testing.T) {
	s := testSet(t)
	if c, ok := s.Country(0); !ok || c != "US" {
		t.Errorf("Country(0) = %v,%v", c, ok)
	}
	if _, ok := s.Country(4); ok {
		t.Error("multi-hop VP must have no location")
	}
	loc, excl := s.Located()
	if len(loc) != 4 || excl != 1 {
		t.Errorf("Located = %v, %d", loc, excl)
	}
}

func TestInOutCountry(t *testing.T) {
	s := testSet(t)
	if got := s.InCountry("US"); len(got) != 3 {
		t.Errorf("InCountry(US) = %v", got)
	}
	out := s.OutOfCountry("US")
	if len(out) != 1 || out[0] != 3 {
		t.Errorf("OutOfCountry(US) = %v (multi-hop must be excluded)", out)
	}
	if got := s.InCountry("RU"); len(got) != 0 {
		t.Errorf("InCountry(RU) = %v; multi-hop VP in a Russian AS is unlocatable", got)
	}
}

func TestCensus(t *testing.T) {
	s := testSet(t)
	census := s.Census()
	if len(census) != 2 {
		t.Fatalf("census = %+v", census)
	}
	if census[0].Country != "US" || census[0].VPs != 3 || census[0].VPASNs != 2 {
		t.Errorf("US census = %+v", census[0])
	}
	if census[1].Country != "NL" || census[1].VPs != 1 {
		t.Errorf("NL census = %+v", census[1])
	}
}

func TestASConcentration(t *testing.T) {
	s := testSet(t)
	conc := s.ASConcentration("US")
	// AS3356 hosts 2 VPs, AS7018 hosts 1: map[2]=2 VPs, map[1]=1 VP.
	if conc[2] != 2 || conc[1] != 1 {
		t.Errorf("concentration = %v", conc)
	}
}

func TestCollectors(t *testing.T) {
	s := testSet(t)
	cs := s.Collectors()
	if len(cs) != 3 || cs[0].Name > cs[1].Name || cs[1].Name > cs[2].Name {
		t.Errorf("Collectors = %+v", cs)
	}
	if c, ok := s.Collector("rc-nl"); !ok || c.Country != "NL" {
		t.Errorf("Collector(rc-nl) = %+v,%v", c, ok)
	}
	if _, ok := s.Collector("zzz"); ok {
		t.Error("unknown collector lookup must fail")
	}
	if s.Len() != 5 || s.VP(1).AS != 7018 || len(s.VPs()) != 5 {
		t.Error("accessors wrong")
	}
}
