// Command checkartifacts validates the run artifacts the obs layer exports:
// a provenance manifest (-manifest) and a Chrome trace (-trace). CI runs it
// against the files a real asrank run wrote, so schema drift or an empty
// export fails the gate instead of shipping. It checks structure, not
// values: required manifest fields are present and plausible, the trace has
// at least one complete span event, and -require can demand optional
// manifest sections (seeds, coverage, sanitize_drops, inputs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"countryrank/internal/obs"
)

func main() {
	manifestPath := flag.String("manifest", "", "run provenance manifest JSON to validate")
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	require := flag.String("require", "", "comma-separated optional manifest sections that must be present (seeds, coverage, sanitize_drops, inputs)")
	flag.Parse()
	if *manifestPath == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "usage: checkartifacts [-manifest FILE] [-trace FILE] [-require sections]")
		os.Exit(2)
	}
	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "checkartifacts: "+format+"\n", args...)
		ok = false
	}
	if *manifestPath != "" {
		checkManifest(*manifestPath, *require, fail)
	}
	if *tracePath != "" {
		checkTrace(*tracePath, fail)
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("checkartifacts: ok")
}

func checkManifest(path, require string, fail func(string, ...any)) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("manifest: %v", err)
		return
	}
	var m obs.RunManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		fail("manifest %s: not JSON: %v", path, err)
		return
	}
	if m.Schema != obs.ManifestSchema {
		fail("manifest %s: schema %d, want %d", path, m.Schema, obs.ManifestSchema)
	}
	if m.Cmd == "" {
		fail("manifest %s: empty cmd", path)
	}
	if _, err := time.Parse(time.RFC3339, m.Started); err != nil {
		fail("manifest %s: started timestamp %q: %v", path, m.Started, err)
	}
	if m.WallSeconds <= 0 {
		fail("manifest %s: wall_seconds = %v", path, m.WallSeconds)
	}
	if len(m.Flags) == 0 {
		fail("manifest %s: no flags recorded", path)
	}
	if m.Env.GoVersion == "" || m.Env.NumCPU <= 0 {
		fail("manifest %s: incomplete env: %+v", path, m.Env)
	}
	if len(m.Metrics) == 0 {
		fail("manifest %s: empty metrics snapshot", path)
	}
	if strings.TrimSpace(m.SpanTree) == "" {
		fail("manifest %s: empty span tree", path)
	}
	for _, section := range strings.Split(require, ",") {
		switch strings.TrimSpace(section) {
		case "":
		case "seeds":
			if len(m.Seeds) == 0 {
				fail("manifest %s: required seeds section missing", path)
			}
		case "coverage":
			if m.Coverage == nil {
				fail("manifest %s: required coverage section missing", path)
			} else if m.Coverage.VPsExpected <= 0 {
				fail("manifest %s: coverage.vps_expected = %d", path, m.Coverage.VPsExpected)
			}
		case "sanitize_drops":
			if m.SanitizeDrops == nil {
				fail("manifest %s: required sanitize_drops section missing", path)
			} else if m.SanitizeDrops.Total <= 0 {
				fail("manifest %s: sanitize_drops.total = %d", path, m.SanitizeDrops.Total)
			}
		case "inputs":
			if len(m.Inputs) == 0 {
				fail("manifest %s: required inputs section missing", path)
			}
		default:
			fail("unknown -require section %q", section)
		}
	}
}

// traceFile mirrors just enough of the Chrome trace-event schema to assert
// the export is loadable and non-trivial.
type traceFile struct {
	TraceEvents []struct {
		Name  string `json:"name"`
		Phase string `json:"ph"`
		Dur   int64  `json:"dur"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func checkTrace(path string, fail func(string, ...any)) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("trace: %v", err)
		return
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fail("trace %s: not JSON: %v", path, err)
		return
	}
	complete := 0
	for _, ev := range tf.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.Name == "" {
			fail("trace %s: unnamed complete event", path)
			return
		}
		if ev.Dur < 1 {
			fail("trace %s: complete event %q has dur %d, want >= 1us", path, ev.Name, ev.Dur)
			return
		}
		complete++
	}
	if complete == 0 {
		fail("trace %s: no complete span events", path)
	}
}
