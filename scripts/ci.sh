#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, a one-iteration
# benchmark smoke run so the perf path (dense kernels + parallel stability)
# is exercised under the race detector's shadow, and an observability smoke
# test that scrapes a live /metrics endpoint after a real pipeline run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo '--- gofmt'
unformatted=$(gofmt -l ./cmd ./internal ./scripts ./*.go)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '--- go vet'
go vet ./...

echo '--- go build'
go build ./...

echo '--- go test -race'
go test -race ./...

echo '--- bench smoke (Figure4, 1 iteration)'
go test -run '^$' -bench Figure4 -benchtime 1x .

echo '--- shard/spill determinism under -race'
# The sharded-propagation merge and the chunk-parallel MRT importer are the
# two places a scheduling race could silently corrupt output; run their
# byte-identity tests with the race detector watching the worker pools.
go test -race -count=1 \
    -run 'TestShardedBuildDeterministic|TestSpilled|TestImportMRTFilesMatchesStreams|TestOrderedMap|TestRoundTripMultiRun|TestBucketsPartitionPreservesOrder' \
    ./internal/routing ./internal/par ./internal/ribstore

echo '--- scale smoke (sharded topogen -> crank -mrt -> asrank, spilled)'
# A medium world driven through the full out-of-core path: generate with
# routes spilled to disk, re-ingest the dumps chunk-parallel with a second
# spill, and rank in-process with a third. Each stage must agree with the
# others implicitly (crank consumes topogen's dumps) and leave no run files
# behind misplaced.
scale_dir=$(mktemp -d)
go build -o "$scale_dir/topogen" ./cmd/topogen
go build -o "$scale_dir/crank" ./cmd/crank
"$scale_dir/topogen" -scale 0.5 -vpscale 0.5 -shards 8 \
    -spill-dir "$scale_dir/spill-gen" -out "$scale_dir/mrt"
"$scale_dir/crank" -scale 0.5 -vpscale 0.5 -mrt "$scale_dir/mrt" \
    -spill-dir "$scale_dir/spill-import" -top 3 AU >"$scale_dir/crank.out"
grep -q 'CCI' "$scale_dir/crank.out"
ls "$scale_dir"/spill-gen/run-*.crib >/dev/null
ls "$scale_dir"/spill-import/run-*.crib >/dev/null
rm -rf "$scale_dir"

echo '--- fuzz smoke (MRT reader, 10s)'
go test -run '^$' -fuzz FuzzReaderNext -fuzztime 10s ./internal/mrt

echo '--- chaos soak (collector under injected faults, -race, bounded)'
# The soak feeds a live collector over transports that reset, truncate,
# fragment, and delay, and requires the rebuilt collection to be identical
# to a fault-free run with reconnects and resumes actually observed.
go test -race -run TestChaosSoak -count=1 -timeout 120s ./internal/collector

echo '--- obs smoke (asrank -debug-addr, scrape endpoints, validate artifacts)'
# Run a small asrank with the debug server up and -debug-linger holding it
# alive after the run, then assert the endpoints answer, the sanitize /
# kernel instrumentation actually moved during the run, and the exported
# trace + provenance manifest parse and carry the required sections.
obs_port=$((20000 + RANDOM % 20000))
obs_dir=$(mktemp -d)
obs_log="$obs_dir/asrank.log"
obs_metrics="$obs_dir/metrics.txt"
go build -o "$obs_dir/asrank" ./cmd/asrank
"$obs_dir/asrank" -scale 0.15 -vpscale 0.2 -top 3 \
    -shards 4 -spill-dir "$obs_dir/spill" \
    -debug-addr "127.0.0.1:$obs_port" -debug-linger 60s -timeline 250ms \
    -trace-out "$obs_dir/trace.json" -manifest "$obs_dir/manifest.json" >"$obs_log" 2>&1 &
obs_pid=$!
trap 'kill "$obs_pid" 2>/dev/null || true; rm -rf "$obs_dir"' EXIT

# The debug server answers as soon as the process starts, before the
# pipeline has run, so poll /metrics until the final stage of the run (the
# hegemony kernel) has reported, then take the scrape.
for _ in $(seq 1 120); do
    if ! kill -0 "$obs_pid" 2>/dev/null; then
        echo "asrank exited before it could be scraped:" >&2
        cat "$obs_log" >&2
        exit 1
    fi
    if curl -fsS "http://127.0.0.1:$obs_port/metrics" 2>/dev/null |
        awk '$1 == "countryrank_core_kernel_hegemony_seconds_count" && $2 + 0 > 0 { found = 1 } END { exit !found }'; then
        break
    fi
    sleep 1
done
curl -fsS "http://127.0.0.1:$obs_port/healthz" | grep -q ok
curl -fsS "http://127.0.0.1:$obs_port/metrics" >"$obs_metrics"

require_nonzero() {
    # require_nonzero METRIC: the series must exist with a value > 0.
    if ! awk -v m="$1" '$1 == m && $2 + 0 > 0 { found = 1 } END { exit !found }' "$obs_metrics"; then
        echo "metric $1 missing or zero in /metrics:" >&2
        grep -E "^$1" "$obs_metrics" >&2 || true
        exit 1
    fi
}
require_nonzero countryrank_sanitize_records_total
require_nonzero countryrank_sanitize_accepted_total
require_nonzero countryrank_routing_paths_propagated_total
require_nonzero countryrank_routing_shards_done_total
require_nonzero countryrank_routing_spill_bytes_total
require_nonzero countryrank_core_kernel_cone_seconds_count
require_nonzero countryrank_core_kernel_hegemony_seconds_count

# The trace and manifest are written at Done, before the linger window, so
# poll briefly for both files and then validate them with the Go checker
# (structure, schema version, and the sections a real run must populate).
for _ in $(seq 1 60); do
    [[ -s "$obs_dir/trace.json" && -s "$obs_dir/manifest.json" ]] && break
    sleep 1
done
go run ./scripts/checkartifacts \
    -manifest "$obs_dir/manifest.json" -trace "$obs_dir/trace.json" \
    -require seeds,coverage,sanitize_drops

# The timeline sampler must have accumulated history by now.
curl -fsS "http://127.0.0.1:$obs_port/debug/timeline" |
    grep -q countryrank_core_kernel_hegemony_seconds_count
curl -fsS "http://127.0.0.1:$obs_port/debug/trace" | grep -q traceEvents
kill "$obs_pid" 2>/dev/null || true
wait "$obs_pid" 2>/dev/null || true

echo '--- rankd smoke (serve, revalidate, rollover, manifest digest, loadgen gate)'
# Start the serving daemon on a small world, exercise the conditional-request
# contract end to end (200 with a strong ETag, then 304 on If-None-Match
# replay), roll the snapshot over with SIGHUP, check the serving metrics
# moved, pair the manifest's recorded digest with the one actually served,
# and close with a short loadgen run pushed through the same regression gate
# the kernel benches use.
rankd_port=$((20000 + RANDOM % 20000))
rankd_dir=$(mktemp -d)
go build -o "$rankd_dir/rankd" ./cmd/rankd
go build -o "$rankd_dir/loadgen" ./cmd/loadgen
go build -o "$rankd_dir/bench" ./cmd/bench
"$rankd_dir/rankd" -addr "127.0.0.1:$rankd_port" -scale 0.15 -vpscale 0.2 \
    -topn 10 -manifest "$rankd_dir/manifest.json" \
    -access-log "$rankd_dir/access.log" -trace-sample 0.2 -timeline 500ms \
    -slo 'availability=99,latency=99@50ms,bucket=1s,fast=5s,slow=30s,trip=2' \
    -slow-probe 100ms >"$rankd_dir/rankd.log" 2>&1 &
rankd_pid=$!
trap 'kill "$obs_pid" "$rankd_pid" 2>/dev/null || true; rm -rf "$obs_dir" "$rankd_dir"' EXIT
rankd_base="http://127.0.0.1:$rankd_port"

# The listener comes up only after the first snapshot is built; poll for it.
for _ in $(seq 1 120); do
    if ! kill -0 "$rankd_pid" 2>/dev/null; then
        echo "rankd exited before serving:" >&2
        cat "$rankd_dir/rankd.log" >&2
        exit 1
    fi
    curl -fsS "$rankd_base/v1/snapshot" >"$rankd_dir/snapshot.json" 2>/dev/null && break
    sleep 1
done
served_digest=$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' "$rankd_dir/snapshot.json")
cc=$(sed -n 's/.*"countries":\["\([A-Z][A-Z]*\)".*/\1/p' "$rankd_dir/snapshot.json")
[[ -n "$served_digest" && -n "$cc" ]]

# 200 with a strong ETag, then 304 on replay with that exact tag.
curl -fsS -D "$rankd_dir/country.hdr" -o "$rankd_dir/country.json" \
    "$rankd_base/v1/countries/$cc"
etag=$(awk 'tolower($1) == "etag:" { print $2 }' "$rankd_dir/country.hdr" | tr -d '\r')
[[ "$etag" == '"'*'"' ]]
grep -q "\"country\":\"$cc\"" "$rankd_dir/country.json"
code=$(curl -s -o /dev/null -w '%{http_code}' \
    -H "If-None-Match: $etag" "$rankd_base/v1/countries/$cc")
[[ "$code" == 304 ]]
curl -fsS "$rankd_base/v1/top/ccg?n=3" | grep -q '"n":3'

# SIGHUP publishes a new snapshot; same data, so the digest must not move.
kill -HUP "$rankd_pid"
for _ in $(seq 1 120); do
    curl -fsS "$rankd_base/v1/snapshot" 2>/dev/null | grep -q '"epoch":2' && break
    sleep 1
done
curl -fsS "$rankd_base/v1/snapshot" | grep -q '"epoch":2'
curl -fsS "$rankd_base/v1/snapshot" | grep -q "\"digest\":\"$served_digest\""

# Serving metrics moved, and the manifest recorded the digest being served.
curl -fsS "$rankd_base/metrics" >"$rankd_dir/metrics.txt"
obs_metrics="$rankd_dir/metrics.txt"
require_nonzero countryrank_rankd_requests_total
require_nonzero countryrank_rankd_responses_200_total
require_nonzero countryrank_rankd_responses_304_total
require_nonzero countryrank_rankd_snapshot_swaps_total
manifest_digest=$(sed -n 's/.*"snapshot_digest": *"\([0-9a-f]*\)".*/\1/p' "$rankd_dir/manifest.json")
if [[ "$manifest_digest" != "$served_digest" ]]; then
    echo "manifest snapshot_digest $manifest_digest != served digest $served_digest" >&2
    exit 1
fi

# A short load run, gated against the committed serving baseline. The
# tolerance is deliberately loose: CI hosts differ wildly in single-request
# latency, so this catches order-of-magnitude regressions and wiring rot,
# while the committed baseline documents real measured numbers. Loadgen runs
# in the background so the request inspector and SLO report can be scraped
# while traffic is actually flowing.
"$rankd_dir/loadgen" -url "$rankd_base" -duration 3s -conc 4 -n 10 \
    -max-error-rate 0 -out "$rankd_dir/serving.json" >"$rankd_dir/loadgen.out" 2>&1 &
loadgen_pid=$!
sleep 1
# Mid-run: the deterministic sampler must have promoted traces by now, and
# the SLO engine must be reporting burn over live windows.
curl -fsS "$rankd_base/debug/requests" >"$rankd_dir/requests.json"
grep -q '"sampled":' "$rankd_dir/requests.json"
sampled=$(sed -n 's/.*"sampled":\([0-9]*\).*/\1/p' "$rankd_dir/requests.json")
if [[ -z "$sampled" || "$sampled" -eq 0 ]]; then
    echo "no sampled request traces at /debug/requests:" >&2
    head -c 500 "$rankd_dir/requests.json" >&2
    exit 1
fi
grep -q '"events":\[{"name":"parse"' "$rankd_dir/requests.json"
curl -fsS "$rankd_base/debug/slo" >"$rankd_dir/slo.json"
grep -q '"burn":' "$rankd_dir/slo.json"
grep -q '"name":"availability"' "$rankd_dir/slo.json"
grep -q '"name":"latency"' "$rankd_dir/slo.json"
if ! wait "$loadgen_pid"; then
    echo "loadgen failed:" >&2
    cat "$rankd_dir/loadgen.out" >&2
    exit 1
fi
cat "$rankd_dir/loadgen.out"

# The serving BENCH snapshot carries the drift/history extras loadgen
# scrapes from the server: the SIGHUP above produced one drift-computed
# rollover and a two-epoch history ring.
grep -q '"history_epochs"' "$rankd_dir/serving.json"
grep -q '"drift_rollovers"' "$rankd_dir/serving.json"

# The wide-event access log was written by the drainer, one JSON record per
# request with the route class and snapshot provenance attached.
[[ -s "$rankd_dir/access.log" ]]
grep -q '"route":"country"' "$rankd_dir/access.log"
grep -q '"digest":' "$rankd_dir/access.log"

# The observability series all moved: runtime self-metrics, SLO accounting,
# access-log pipeline, and the trace sampler.
curl -fsS "$rankd_base/metrics" >"$obs_metrics"
require_nonzero countryrank_go_goroutines
require_nonzero countryrank_go_heap_alloc_bytes
require_nonzero countryrank_slo_requests_total
require_nonzero countryrank_accesslog_events_total
require_nonzero countryrank_reqtrace_sampled_total
# The timeline sampler replays the serving series alongside burn rates.
curl -fsS "$rankd_base/debug/timeline" >"$rankd_dir/timeline.json"
grep -q countryrank_rankd_requests_total "$rankd_dir/timeline.json"
grep -q countryrank_slo_latency_fast_burn "$rankd_dir/timeline.json"

serving_baseline=$(ls BENCH_*_serving*.json | tail -1)
"$rankd_dir/bench" -input "$rankd_dir/serving.json" \
    -baseline "$serving_baseline" -tolerance 25

echo '--- rankd SLO degrade-and-recover (induced latency)'
# Let the loadgen traffic age out of the 5s fast window, then hammer the
# slow-probe hook: every probe=slow request sleeps 100ms server-side,
# breaching the 50ms objective, so the fast burn trips and /healthz reports
# degraded. Silence (plus window aging) must then recover it with no
# restart.
sleep 6
curl -fsS "$rankd_base/healthz" | grep -q '^ok'
for _ in $(seq 1 20); do
    curl -fsS "$rankd_base/v1/countries/$cc?probe=slow" >/dev/null
done
code=$(curl -s -o /dev/null -w '%{http_code}' "$rankd_base/healthz")
if [[ "$code" != 503 ]]; then
    echo "healthz = $code after latency injection, want 503 degraded" >&2
    curl -s "$rankd_base/debug/slo" >&2
    exit 1
fi
curl -s "$rankd_base/healthz" | grep -q 'degraded: latency fast burn'
sleep 7
curl -fsS "$rankd_base/healthz" | grep -q '^ok'

kill "$rankd_pid" 2>/dev/null || true
wait "$rankd_pid" 2>/dev/null || true
# The shutdown manifest rewrite recorded the final burn state.
grep -q '"slo_config"' "$rankd_dir/manifest.json"
grep -q '"slo_latency_fast_burn"' "$rankd_dir/manifest.json"

echo '--- rankd crash-recovery smoke (kill -9, warm start from durable store)'
# The crash-safety contract end to end: run rankd with the durable snapshot
# store, kill -9 it (no graceful shutdown, no final persist), restart, and
# require that the FIRST response from the new process serves the persisted
# last-good snapshot — same content digest, marked stale — before the
# background rebuild publishes epoch 2. Then the rebuild must land, clear
# the stale marker, and verify the same digest (same seed ⇒ same content).
crash_port=$((20000 + RANDOM % 20000))
crash_dir=$(mktemp -d)
trap 'kill "$obs_pid" "$rankd_pid" "$crash_pid" 2>/dev/null || true; rm -rf "$obs_dir" "$rankd_dir" "$crash_dir"' EXIT
"$rankd_dir/rankd" -addr "127.0.0.1:$crash_port" -scale 0.15 -vpscale 0.2 \
    -topn 10 -snapshot-dir "$crash_dir/snapdir" -snapshot-keep 2 \
    >"$crash_dir/rankd-run1.log" 2>&1 &
crash_pid=$!
crash_base="http://127.0.0.1:$crash_port"
for _ in $(seq 1 120); do
    if ! kill -0 "$crash_pid" 2>/dev/null; then
        echo "rankd (run 1) exited before serving:" >&2
        cat "$crash_dir/rankd-run1.log" >&2
        exit 1
    fi
    curl -fsS "$crash_base/v1/snapshot" >"$crash_dir/snap1.json" 2>/dev/null && break
    sleep 1
done
grep -q '"stale":false' "$crash_dir/snap1.json"
crash_digest=$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' "$crash_dir/snap1.json")
[[ -n "$crash_digest" ]]
ls "$crash_dir"/snapdir/snap-*.csnap >/dev/null

kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true

"$rankd_dir/rankd" -addr "127.0.0.1:$crash_port" -scale 0.15 -vpscale 0.2 \
    -topn 10 -snapshot-dir "$crash_dir/snapdir" -snapshot-keep 2 \
    -max-inflight 1 -slow-probe 1s >"$crash_dir/rankd-run2.log" 2>&1 &
crash_pid=$!
# A warm start listens immediately (the multi-second rebuild runs in the
# background), so the first successful scrape races the rebuild and must
# catch the persisted generation: poll fast.
for _ in $(seq 1 600); do
    if ! kill -0 "$crash_pid" 2>/dev/null; then
        echo "rankd (run 2) exited before serving:" >&2
        cat "$crash_dir/rankd-run2.log" >&2
        exit 1
    fi
    curl -fsS "$crash_base/v1/snapshot" >"$crash_dir/snap2.json" 2>/dev/null && break
    sleep 0.05
done
if ! grep -q '"stale":true' "$crash_dir/snap2.json"; then
    echo "first post-restart response not served from the persisted snapshot:" >&2
    cat "$crash_dir/snap2.json" >&2
    exit 1
fi
grep -q "\"digest\":\"$crash_digest\"" "$crash_dir/snap2.json"
curl -fsS "$crash_base/readyz" | grep -q '^ok'

# The background rebuild publishes epoch 2, clears the stale marker, and —
# same seed, same world — reproduces the persisted content digest exactly
# (the daemon logs the warm-start verification).
for _ in $(seq 1 120); do
    curl -fsS "$crash_base/v1/snapshot" 2>/dev/null | grep -q '"stale":false' && break
    sleep 1
done
curl -fsS "$crash_base/v1/snapshot" >"$crash_dir/snap3.json"
grep -q '"stale":false' "$crash_dir/snap3.json"
grep -q "\"digest\":\"$crash_digest\"" "$crash_dir/snap3.json"
grep -q 'warm-start verified' "$crash_dir/rankd-run2.log"

# Overload shedding, deterministically: the zero-alloc handler finishes in
# microseconds, so organic traffic virtually never exceeds -max-inflight 1 —
# instead a probe=slow request (the -slow-probe CI hook) holds the single
# admission slot for 1s, and a concurrent request must shed 503 +
# Retry-After.
curl -fsS "$crash_base/v1/snapshot?probe=slow" >/dev/null &
probe_pid=$!
sleep 0.2
shed_code=$(curl -s -o /dev/null -D "$crash_dir/shed-headers.txt" \
    -w '%{http_code}' "$crash_base/v1/countries/AU")
if [[ "$shed_code" != 503 ]]; then
    echo "concurrent request got $shed_code, want 503 shed" >&2
    exit 1
fi
grep -qi 'retry-after: 1' "$crash_dir/shed-headers.txt"
wait "$probe_pid"

# loadgen classifies designed shedding (503 + Retry-After) as its own
# ServeShed class, not an error: drive it with -max-error-rate 0 while
# probe=slow holds starve the slot, so the run sheds heavily yet passes.
"$rankd_dir/loadgen" -url "$crash_base" -duration 2s -conc 8 -n 10 \
    -max-error-rate 0 -out "$crash_dir/serving-shed.json" >"$crash_dir/loadgen-shed.out" 2>&1 &
loadgen_pid=$!
sleep 0.3
# A probe can itself be shed if a loadgen request holds the slot at that
# exact instant; tolerate it — one successful 1s hold is plenty.
curl -fsS "$crash_base/v1/snapshot?probe=slow" >/dev/null || true
curl -fsS "$crash_base/v1/snapshot?probe=slow" >/dev/null || true
wait "$loadgen_pid"
grep -q 'ServeShed' "$crash_dir/loadgen-shed.out"
grep -q '"shed_rate"' "$crash_dir/serving-shed.json"
curl -fsS "$crash_base/metrics" >"$obs_metrics"
require_nonzero countryrank_rankd_shed_total
require_nonzero countryrank_rankd_snapshot_saves_total

kill "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true

echo '--- rankd drift smoke (seed-step rollover, drift metrics, history, rankdiff)'
# Roll rankd between two genuinely different worlds (-seed-step bumps the
# topogen seed per epoch), then require the whole drift layer to light up:
# non-zero drift metrics on /metrics, a two-epoch /debug/history, a served
# per-country history page, a drift summary in the shutdown manifest, and —
# the live/offline agreement — a rankdiff report over the two persisted
# generations whose churn score string-matches the live gauge.
drift_port=$((20000 + RANDOM % 20000))
drift_dir=$(mktemp -d)
go build -o "$drift_dir/rankdiff" ./cmd/rankdiff
trap 'kill "$obs_pid" "$rankd_pid" "$crash_pid" "$drift_pid" 2>/dev/null || true; rm -rf "$obs_dir" "$rankd_dir" "$crash_dir" "$drift_dir"' EXIT
"$rankd_dir/rankd" -addr "127.0.0.1:$drift_port" -scale 0.15 -vpscale 0.2 \
    -topn 10 -seed-step 1 -history 4 -snapshot-dir "$drift_dir/snapdir" \
    -manifest "$drift_dir/manifest.json" >"$drift_dir/rankd.log" 2>&1 &
drift_pid=$!
drift_base="http://127.0.0.1:$drift_port"
for _ in $(seq 1 120); do
    if ! kill -0 "$drift_pid" 2>/dev/null; then
        echo "rankd (drift run) exited before serving:" >&2
        cat "$drift_dir/rankd.log" >&2
        exit 1
    fi
    curl -fsS "$drift_base/v1/snapshot" >"$drift_dir/snap1.json" 2>/dev/null && break
    sleep 1
done
drift_digest1=$(sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p' "$drift_dir/snap1.json")
drift_cc=$(sed -n 's/.*"countries":\["\([A-Z][A-Z]*\)".*/\1/p' "$drift_dir/snap1.json")
[[ -n "$drift_digest1" && -n "$drift_cc" ]]

# SIGHUP rebuilds with the stepped seed: a different world, so the digest
# must move and the rollover must produce real drift.
kill -HUP "$drift_pid"
for _ in $(seq 1 120); do
    curl -fsS "$drift_base/v1/snapshot" 2>/dev/null | grep -q '"epoch":2' && break
    sleep 1
done
curl -fsS "$drift_base/v1/snapshot" >"$drift_dir/snap2.json"
grep -q '"epoch":2' "$drift_dir/snap2.json"
if grep -q "\"digest\":\"$drift_digest1\"" "$drift_dir/snap2.json"; then
    echo "seed-step rollover reproduced the same digest; no drift to measure" >&2
    exit 1
fi

curl -fsS "$drift_base/metrics" >"$drift_dir/metrics.txt"
obs_metrics="$drift_dir/metrics.txt"
require_nonzero countryrank_drift_churn_score
require_nonzero countryrank_drift_rollovers_total
require_nonzero countryrank_drift_churn_score_cci
require_nonzero countryrank_rankd_history_epochs
live_churn=$(awk '$1 == "countryrank_drift_churn_score" { print $2 }' "$drift_dir/metrics.txt")

# Both epochs appear in the debug history document and the served page.
curl -fsS "$drift_base/debug/history" >"$drift_dir/history.json"
grep -q '"epochs":\[1,2\]' "$drift_dir/history.json"
grep -q '"churn_cci"' "$drift_dir/history.json"
curl -fsS "$drift_base/v1/countries/$drift_cc/history" >"$drift_dir/cc-history.json"
grep -q "\"country\":\"$drift_cc\"" "$drift_dir/cc-history.json"
grep -q '"epochs":\[1,2\]' "$drift_dir/cc-history.json"

# Graceful shutdown writes the manifest with the drift summary attached.
kill "$drift_pid"
wait "$drift_pid" 2>/dev/null || true
grep -q '"drift_summary"' "$drift_dir/manifest.json"
grep -q '"drift_churn_score"' "$drift_dir/manifest.json"

# The offline tool over the two persisted generations must reproduce the
# live score exactly — same diff code, same accumulation order, floats
# persisted as raw bits.
"$drift_dir/rankdiff" -snapshot-dir "$drift_dir/snapdir" >"$drift_dir/rankdiff.out"
grep -q 'top movers:' "$drift_dir/rankdiff.out"
if ! grep -qF "max churn $live_churn" "$drift_dir/rankdiff.out"; then
    echo "rankdiff churn disagrees with live countryrank_drift_churn_score=$live_churn:" >&2
    cat "$drift_dir/rankdiff.out" >&2
    exit 1
fi

echo 'CI OK'
