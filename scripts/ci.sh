#!/usr/bin/env bash
# CI gate: vet, build, race-enabled tests, and a one-iteration benchmark
# smoke run so the perf path (dense kernels + parallel stability) is
# exercised under the race detector's shadow on every change.
set -euo pipefail
cd "$(dirname "$0")/.."

echo '--- go vet'
go vet ./...

echo '--- go build'
go build ./...

echo '--- go test -race'
go test -race ./...

echo '--- bench smoke (Figure4, 1 iteration)'
go test -run '^$' -bench Figure4 -benchtime 1x .

echo '--- fuzz smoke (MRT reader, 10s)'
go test -run '^$' -fuzz FuzzReaderNext -fuzztime 10s ./internal/mrt

echo 'CI OK'
